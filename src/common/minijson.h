// Tiny recursive-descent JSON parser: validates syntax and exposes just
// enough structure (objects, arrays, strings, numbers) to read back the
// JSON this library emits (json_writer.h) — bench reports, run reports,
// metrics snapshots, Chrome traces. Deliberately minimal: numbers are
// doubles, \u escapes keep only the low byte. Used by the report/diff
// tools (examples/bench_diff, examples/recode_report) and the telemetry
// schema tests.
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace recode::minijson {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  // null is monostate; numbers are doubles (fine for test asserts).
  std::variant<std::monostate, bool, double, std::string,
               std::shared_ptr<Object>, std::shared_ptr<Array>>
      v;

  bool is_null() const { return std::holds_alternative<std::monostate>(v); }
  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<Object>>(v);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<Array>>(v);
  }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }

  const Object& object() const { return *std::get<std::shared_ptr<Object>>(v); }
  const Array& array() const { return *std::get<std::shared_ptr<Array>>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
  double num() const { return std::get<double>(v); }
  bool boolean() const { return std::get<bool>(v); }

  bool has(const std::string& key) const {
    return is_object() && object().count(key) != 0;
  }
  const Value& at(const std::string& key) const { return object().at(key); }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  // Parses one JSON document; sets ok=false (with a position) on any
  // syntax error or trailing garbage.
  Value parse(bool& ok) {
    ok = true;
    Value v = value(ok);
    skip_ws();
    if (pos_ != text_.size()) ok = false;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value value(bool& ok) {
    skip_ws();
    if (pos_ >= text_.size()) {
      ok = false;
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') return object_value(ok);
    if (c == '[') return array_value(ok);
    if (c == '"') return string_value(ok);
    if (c == 't') {
      if (!literal("true")) ok = false;
      return Value{true};
    }
    if (c == 'f') {
      if (!literal("false")) ok = false;
      return Value{false};
    }
    if (c == 'n') {
      if (!literal("null")) ok = false;
      return Value{};
    }
    return number_value(ok);
  }

  Value object_value(bool& ok) {
    auto obj = std::make_shared<Object>();
    consume('{');
    skip_ws();
    if (consume('}')) return Value{obj};
    while (ok) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        ok = false;
        break;
      }
      Value key = string_value(ok);
      if (!ok || !consume(':')) {
        ok = false;
        break;
      }
      (*obj)[key.str()] = value(ok);
      if (!ok) break;
      if (consume(',')) continue;
      if (consume('}')) break;
      ok = false;
    }
    return Value{obj};
  }

  Value array_value(bool& ok) {
    auto arr = std::make_shared<Array>();
    consume('[');
    skip_ws();
    if (consume(']')) return Value{arr};
    while (ok) {
      arr->push_back(value(ok));
      if (!ok) break;
      if (consume(',')) continue;
      if (consume(']')) break;
      ok = false;
    }
    return Value{arr};
  }

  Value string_value(bool& ok) {
    consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Value{out};
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              ok = false;
              return Value{out};
            }
            // Decoded only far enough for the tests: keep the escape's
            // low byte (all writer-emitted \u escapes are control chars).
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                ok = false;
                return Value{out};
              }
            }
            out += static_cast<char>(code & 0xff);
            break;
          }
          default:
            ok = false;
            return Value{out};
        }
        continue;
      }
      out += c;
    }
    ok = false;  // unterminated string
    return Value{out};
  }

  Value number_value(bool& ok) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      ok = false;
      return {};
    }
    try {
      return Value{std::stod(std::string(text_.substr(start, pos_ - start)))};
    } catch (...) {
      ok = false;
      return {};
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline Value parse(std::string_view text, bool& ok) {
  return Parser(text).parse(ok);
}

}  // namespace recode::minijson
