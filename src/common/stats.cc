#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace recode {

double geomean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.mean = mean(values);
  s.median = median(std::vector<double>(values.begin(), values.end()));
  s.geomean = geomean(values);
  return s;
}

void StreamingStats::add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (v > 0.0) {
    log_sum_ += std::log(v);
  } else {
    all_positive_ = false;
  }
}

double StreamingStats::geomean() const {
  if (count_ == 0 || !all_positive_) return 0.0;
  return std::exp(log_sum_ / static_cast<double>(count_));
}

}  // namespace recode
