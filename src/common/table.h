// Aligned text-table printer used by every bench binary to emit the
// paper's figure data as readable rows/series.
#pragma once

#include <string>
#include <vector>

namespace recode {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds a row; cells beyond the header width are dropped, missing cells
  // are blank.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 2);

  // Renders with column alignment and a rule under the header.
  std::string to_string() const;

  // Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace recode
