// Work-stealing scheduling primitives for the streaming SpMV executor
// (and any future per-item parallel stage): a Chase–Lev-style per-worker
// deque plus a scheduler that combines one deque per worker with a small
// mutex-guarded injector queue.
//
// Why this replaces the bounded per-band queues: with rigid capacity-2
// band queues the decode stage (96% of the measured busy time,
// core.overlap.decode_fraction) stalls whenever its own band's consumer
// falls behind, even while other workers sit idle. Work stealing makes
// every queued task reachable by every worker — an idle worker helps the
// loaded one instead of waiting on it — which is what lets the executor
// approach linear scaling when one band is much larger than the rest.
//
// Memory-ordering note: the classic C11 Chase–Lev formulation
// (Lê et al., PPoPP'13) relies on standalone atomic_thread_fence, which
// ThreadSanitizer does not model — runs under the tsan preset would
// report false races. This implementation instead puts seq_cst ordering
// on the top/bottom indices and stores elements in atomic cells. That
// costs a few extra fenced operations per op (irrelevant next to a block
// decode, the granularity this repo schedules at) and is exactly
// race-free under the C++ memory model, so the tsan battery is
// authoritative rather than noisy.
//
// Determinism: the streaming executor's bitwise parallel≡serial guarantee
// never depends on who executes a task — tasks own disjoint output row
// ranges — so the scheduler is free to hand tasks to any worker in any
// order.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace recode {

// Fixed-capacity Chase–Lev-style deque. The owner pushes and pops at the
// bottom (LIFO — the freshest task is the cache-warm one); thieves steal
// from the top (FIFO — the oldest task, the one the owner will reach
// last, minimizing contention on the same end). Single owner, any number
// of thieves.
//
// T must be trivially copyable and lock-free-atomic sized (task handles:
// indices, small PODs packed into a word).
template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "deque cells are atomics; store task handles, not objects");
  static_assert(sizeof(T) <= sizeof(std::uint64_t),
                "deque cells must be lock-free atomic sized");

 public:
  enum class Steal { kStolen, kEmpty, kAbort };

  // Capacity is rounded up to a power of two. The deque never grows:
  // push_bottom fails when full and the caller overflows into the
  // scheduler's injector queue instead (growth would need epoch-based
  // buffer reclamation, unjustified when the task count is known at seed
  // time).
  explicit WorkStealingDeque(std::size_t capacity = 256) {
    std::size_t cap = 1;
    while (cap < capacity) cap *= 2;
    buffer_ = std::vector<std::atomic<T>>(cap);
    mask_ = cap - 1;
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Owner only. Returns false when the ring is full.
  bool push_bottom(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(capacity())) return false;
    buffer_[static_cast<std::size_t>(b) & mask_].store(
        item, std::memory_order_relaxed);
    // seq_cst publish: the element store above must be visible before any
    // thief can observe the new bottom.
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  // Owner only. LIFO: takes the most recently pushed item. Returns false
  // when empty.
  bool pop_bottom(T& out) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // was empty; undo
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return false;
    }
    out = buffer_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
        // A thief won; the deque is empty.
        bottom_.store(b + 1, std::memory_order_seq_cst);
        return false;
      }
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }
    return true;
  }

  // Any thread. FIFO: takes the oldest item. kAbort means a concurrent
  // steal or pop won the race — the caller may retry or move on.
  Steal steal_top(T& out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return Steal::kEmpty;
    // Read the element before claiming it; if the CAS fails the value is
    // discarded, and cells are atomic so the read is race-free even when
    // the owner recycles the slot afterwards.
    const T item = buffer_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      return Steal::kAbort;
    }
    out = item;
    return Steal::kStolen;
  }

  // Approximate (racy) occupancy — the telemetry sampling view.
  std::size_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty() const { return size() == 0; }

  // Quiescent-state only (no concurrent owner/thief): rewind to empty so
  // a persistent deque is reused run after run without reallocating.
  void reset() {
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(0, std::memory_order_relaxed);
  }

 private:
  std::vector<std::atomic<T>> buffer_;
  std::size_t mask_ = 0;
  // top/bottom use the usual Chase-Lev signed indices; top only ever
  // increases (stolen slots are never reused within a run).
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

// Per-run scheduler statistics, reset with the scheduler. Plain atomics:
// workers bump them concurrently, the owner reads them after the run.
struct StealStats {
  std::atomic<std::uint64_t> steals{0};          // successful steal_top
  std::atomic<std::uint64_t> steal_attempts{0};  // probes incl. empty/abort
  std::atomic<std::uint64_t> injector_pops{0};
  std::atomic<std::uint64_t> local_pops{0};

  void reset() {
    steals.store(0, std::memory_order_relaxed);
    steal_attempts.store(0, std::memory_order_relaxed);
    injector_pops.store(0, std::memory_order_relaxed);
    local_pops.store(0, std::memory_order_relaxed);
  }
};

// N-worker work-stealing scheduler over a fixed task set: one deque per
// worker plus a small mutex-guarded injector queue for overflow and for
// tasks submitted from outside the worker set. acquire() is the only
// entry point workers need — it tries the local deque (LIFO), then the
// injector, then steals (FIFO) from the other workers, and spins with
// backoff until work appears, every task is done, or the run is
// cancelled.
//
// Lifecycle: seed()/inject() while quiescent (or inject concurrently
// from non-workers), workers call acquire()/complete(), then the owner
// calls reset() before the next run. A cancelled run still guarantees
// every deque and the injector end up empty once all workers have
// returned from acquire() — the "drained on error" contract the
// streaming executor's fault tests assert.
template <typename T>
class WorkStealingScheduler {
 public:
  explicit WorkStealingScheduler(std::size_t workers,
                                 std::size_t deque_capacity = 256)
      : injector_open_(true) {
    if (workers == 0) workers = 1;
    deques_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      deques_.push_back(std::make_unique<WorkStealingDeque<T>>(deque_capacity));
    }
  }

  std::size_t workers() const { return deques_.size(); }

  // Quiescent: distribute tasks round-robin across the worker deques,
  // overflowing into the injector when a deque is full. Expects a reset
  // scheduler. Also arms the outstanding-task counter.
  //
  // use_workers limits seeding to the first `use_workers` deques (0 =
  // all) — the streaming executor's split mode seeds only the decoder
  // deques so every seeded deque has an owner that will drain it on
  // cancel (non-acquiring workers never touch their deque).
  void seed(const std::vector<T>& tasks, std::size_t use_workers = 0) {
    if (use_workers == 0 || use_workers > deques_.size()) {
      use_workers = deques_.size();
    }
    std::size_t w = 0;
    for (const T& task : tasks) {
      if (!deques_[w]->push_bottom(task)) {
        std::lock_guard<std::mutex> lock(injector_mu_);
        injector_.push_back(task);
      }
      w = (w + 1) % use_workers;
    }
    remaining_.store(tasks.size(), std::memory_order_relaxed);
  }

  // Thread-safe submission from any thread (including non-workers).
  // Counts toward the outstanding tasks.
  void inject(T task) {
    {
      std::lock_guard<std::mutex> lock(injector_mu_);
      injector_.push_back(task);
    }
    remaining_.fetch_add(1, std::memory_order_relaxed);
  }

  // Blocks (spinning with yield backoff) until a task is available,
  // every task completed, or cancel(). Returns false when the worker
  // should exit; the worker's own deque is guaranteed drained by then.
  bool acquire(std::size_t worker, T& out) {
    WorkStealingDeque<T>& own = *deques_[worker];
    int idle_sweeps = 0;
    for (;;) {
      if (cancelled_.load(std::memory_order_acquire)) {
        drain_own(worker);
        return false;
      }
      if (own.pop_bottom(out)) {
        stats_.local_pops.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (try_pop_injector(out)) {
        stats_.injector_pops.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      bool any_abort = false;
      for (std::size_t i = 1; i < deques_.size(); ++i) {
        const std::size_t victim = (worker + i) % deques_.size();
        stats_.steal_attempts.fetch_add(1, std::memory_order_relaxed);
        switch (deques_[victim]->steal_top(out)) {
          case WorkStealingDeque<T>::Steal::kStolen:
            stats_.steals.fetch_add(1, std::memory_order_relaxed);
            return true;
          case WorkStealingDeque<T>::Steal::kAbort:
            any_abort = true;
            break;
          case WorkStealingDeque<T>::Steal::kEmpty:
            break;
        }
      }
      if (remaining_.load(std::memory_order_acquire) == 0) return false;
      if (!any_abort) {
        // Nothing visible anywhere: either the last tasks are in flight
        // on other workers or a producer is about to inject. Back off —
        // on a loaded host an aggressive spinner steals cycles from the
        // very worker it is waiting on.
        ++idle_sweeps;
        if (idle_sweeps > 64) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        } else {
          std::this_thread::yield();
        }
      }
    }
  }

  // One non-blocking sweep: own deque, then injector, then a single
  // steal round. For callers that must not block while already holding
  // an uncompleted task — acquire() spins until remaining_ hits zero,
  // so re-entering it with a live task would deadlock the last worker.
  // Returns false on a momentarily-empty sweep, after cancel(), or when
  // every task is done; the caller falls back to finishing its held
  // task and calling the blocking acquire() afterwards.
  bool try_acquire(std::size_t worker, T& out) {
    if (cancelled_.load(std::memory_order_acquire)) return false;
    if (deques_[worker]->pop_bottom(out)) {
      stats_.local_pops.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (try_pop_injector(out)) {
      stats_.injector_pops.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    for (std::size_t i = 1; i < deques_.size(); ++i) {
      const std::size_t victim = (worker + i) % deques_.size();
      stats_.steal_attempts.fetch_add(1, std::memory_order_relaxed);
      if (deques_[victim]->steal_top(out) ==
          WorkStealingDeque<T>::Steal::kStolen) {
        stats_.steals.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  // Worker reports one acquired task finished. When the last outstanding
  // task completes, acquire() everywhere starts returning false.
  void complete() { remaining_.fetch_sub(1, std::memory_order_acq_rel); }

  // Error path: every acquire() returns false after draining the
  // caller's own deque; queued injector tasks are dropped immediately.
  void cancel() {
    cancelled_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(injector_mu_);
    injector_.clear();
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  // Tasks acquired but not yet complete()d, plus tasks still queued.
  std::size_t remaining() const {
    return remaining_.load(std::memory_order_acquire);
  }

  // Total tasks currently queued across every deque and the injector
  // (approximate while workers run; exact when quiescent — the
  // drained-after-error assertion).
  std::size_t queued() const {
    std::size_t total = 0;
    for (const auto& d : deques_) total += d->size();
    std::lock_guard<std::mutex> lock(injector_mu_);
    return total + injector_.size();
  }

  // Approximate occupancy of one worker's deque (telemetry sampling).
  std::size_t deque_size(std::size_t worker) const {
    return deques_[worker]->size();
  }

  const StealStats& stats() const { return stats_; }

  // Quiescent: back to a clean, uncancelled, empty scheduler. Buffers
  // are retained, so reset+seed performs no heap allocation once the
  // injector deque has seen its high-water mark.
  void reset() {
    for (auto& d : deques_) d->reset();
    {
      std::lock_guard<std::mutex> lock(injector_mu_);
      injector_.clear();
    }
    remaining_.store(0, std::memory_order_relaxed);
    cancelled_.store(false, std::memory_order_relaxed);
    stats_.reset();
  }

 private:
  bool try_pop_injector(T& out) {
    std::lock_guard<std::mutex> lock(injector_mu_);
    if (injector_.empty()) return false;
    out = injector_.front();
    injector_.pop_front();
    return true;
  }

  void drain_own(std::size_t worker) {
    T discard;
    while (deques_[worker]->pop_bottom(discard)) {
    }
  }

  std::vector<std::unique_ptr<WorkStealingDeque<T>>> deques_;
  mutable std::mutex injector_mu_;
  std::deque<T> injector_;
  bool injector_open_;
  std::atomic<std::size_t> remaining_{0};
  std::atomic<bool> cancelled_{false};
  StealStats stats_;
};

}  // namespace recode
