#include "common/prng.h"

#include <cmath>

namespace recode {

double Prng::next_normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is nudged away from zero to keep log() finite.
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace recode
