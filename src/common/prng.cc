#include "common/prng.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace recode {

std::uint64_t test_seed(std::uint64_t default_seed) {
  std::uint64_t seed = default_seed;
  const char* env = std::getenv("RECODE_TEST_SEED");
  if (env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    const std::uint64_t parsed = std::strtoull(env, &end, 0);
    if (end != nullptr && *end == '\0') seed = parsed;
  }
  std::fprintf(stderr,
               "[recode] test seed = %" PRIu64
               " (set RECODE_TEST_SEED=%" PRIu64 " to reproduce)\n",
               seed, seed);
  return seed;
}

double Prng::next_normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is nudged away from zero to keep log() finite.
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace recode
