// Deterministic PRNG (xoshiro256**) used by all synthetic matrix
// generators so every run of the suite is reproducible from a seed.
#pragma once

#include <cstdint>

namespace recode {

class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding to fill the xoshiro state from one word.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection-free multiply-shift; bias is negligible for bound << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Standard normal via Box-Muller (one value per call; the pair's second
  // value is cached).
  double next_normal();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Seed for randomized tests and benches: returns the RECODE_TEST_SEED
// environment variable when set (decimal or 0x-hex), else default_seed,
// and logs the chosen value to stderr so any failing randomized run can
// be reproduced with `RECODE_TEST_SEED=<seed>`.
std::uint64_t test_seed(std::uint64_t default_seed);

}  // namespace recode
