#include "common/thread_pool.h"

#include <algorithm>

namespace recode {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++pending_;
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (workers_.size() == 1 || n < 2) {
    // Inline path: one chunk on the calling thread. An exception from
    // `body` propagates directly — the same caller-thread rethrow the
    // pooled path provides below.
    body(begin, end);
    return;
  }
  const std::size_t chunks = std::min(n, workers_.size() * 3);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  // One slot per chunk so the rethrown exception is deterministically the
  // first failing chunk in submission order, independent of interleaving.
  std::vector<std::exception_ptr> errors((n + chunk - 1) / chunk);
  std::size_t index = 0;
  for (std::size_t b = begin; b < end; b += chunk, ++index) {
    const std::size_t e = std::min(end, b + chunk);
    std::exception_ptr* slot = &errors[index];
    submit([&body, b, e, slot] {
      try {
        body(b, e);
      } catch (...) {
        *slot = std::current_exception();
      }
    });
  }
  wait_idle();
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

WorkerTeam::WorkerTeam(std::size_t threads) {
  if (threads == 0) threads = 1;
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { thread_loop(i); });
  }
}

WorkerTeam::~WorkerTeam() {
  wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerTeam::run(Body body, void* ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  body_ = body;
  ctx_ = ctx;
  working_ = threads_.size();
  ++generation_;
  start_cv_.notify_all();
}

void WorkerTeam::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return working_ == 0; });
}

void WorkerTeam::thread_loop(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    Body body;
    void* ctx;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
      ctx = ctx_;
    }
    body(ctx, index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--working_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace recode
