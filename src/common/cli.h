// Tiny command-line flag parser shared by benches and examples.
//
// Supports --name=value, --name value, and bare boolean --name. Unknown
// flags throw so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace recode {

class Cli {
 public:
  Cli(int argc, char** argv);

  // Registers a flag with a default and a help string; returns the parsed
  // value. Call for every supported flag before done().
  std::string get_string(const std::string& name, const std::string& def,
                         const std::string& help);
  std::int64_t get_int(const std::string& name, std::int64_t def,
                       const std::string& help);
  double get_double(const std::string& name, double def,
                    const std::string& help);
  bool get_bool(const std::string& name, bool def, const std::string& help);

  // Validates that no unknown flags were passed; prints help and exits 0
  // when --help was given.
  void done();

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;  // parsed --name -> raw value
  std::vector<std::string> help_lines_;
  std::map<std::string, bool> consumed_;
  bool help_requested_ = false;
};

}  // namespace recode
