// Error handling primitives for the recode library.
//
// Unrecoverable programming errors (contract violations) abort via
// RECODE_CHECK; recoverable conditions (bad input files, malformed
// compressed streams) throw recode::Error so callers can surface them.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace recode {

// Exception type for recoverable errors: malformed input, I/O failures,
// corrupt compressed streams. Carries a human-readable message.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string msg) : std::runtime_error(std::move(msg)) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr, const char* msg) {
  std::fprintf(stderr, "RECODE_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace detail

// Contract check: aborts on violation. Enabled in all build types — the
// simulator and codecs rely on these to catch modelling bugs early.
#define RECODE_CHECK(expr)                                               \
  do {                                                                   \
    if (!(expr))                                                         \
      ::recode::detail::check_failed(__FILE__, __LINE__, #expr, "");     \
  } while (false)

#define RECODE_CHECK_MSG(expr, msg)                                      \
  do {                                                                   \
    if (!(expr))                                                         \
      ::recode::detail::check_failed(__FILE__, __LINE__, #expr, (msg));  \
  } while (false)

// Throws recode::Error with a formatted message for recoverable failures.
[[noreturn]] inline void fail(const std::string& msg) { throw Error(msg); }

// Input-validation check: throws recode::Error (recoverable) on violation.
// Use this — not RECODE_CHECK — on any condition reachable from untrusted
// bytes (compressed streams, containers, UDP program inputs), so corrupt
// data surfaces as an exception instead of an abort.
#define RECODE_PARSE_CHECK(expr, msg)        \
  do {                                       \
    if (!(expr)) ::recode::fail((msg));      \
  } while (false)

}  // namespace recode
