#include "core/system.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "telemetry/telemetry.h"

namespace recode::core {

HeterogeneousSystem::HeterogeneousSystem(SystemConfig config)
    : config_(config), dram_(config.dram), cpu_(config.cpu) {}

MatrixProfile HeterogeneousSystem::profile_compressed(
    const std::string& name, const sparse::Csr* csr,
    const codec::CompressedMatrix& cm) const {
  MatrixProfile p;
  p.name = name;
  p.nnz = cm.nnz();
  p.bytes_per_nnz = cm.bytes_per_nnz();

  udpprog::MatrixDecodeOptions opts;
  opts.accelerator = config_.udp;
  opts.max_sampled_blocks = config_.udp_sample_blocks;
  opts.validate = csr != nullptr;
  const auto udp_result = udpprog::simulate_matrix_decode(cm, csr, opts);
  p.udp_block_micros = udp_result.mean_block_micros;
  p.udp_throughput_bps = udp_result.throughput_bytes_per_sec;

  p.cpu_snappy_bps = cpu_.snappy_decode_bps();
  p.cpu_dsh_bps = cpu_.dsh_decode_bps();
  return p;
}

MatrixProfile HeterogeneousSystem::profile(
    const std::string& name, const sparse::Csr& csr,
    const codec::PipelineConfig& pipeline, bool validate) const {
  const auto cm = codec::compress(csr, pipeline);
  return profile_compressed(name, validate ? &csr : nullptr, cm);
}

SpmvPerf HeterogeneousSystem::analyze_spmv(const MatrixProfile& p) const {
  RECODE_CHECK(p.nnz > 0);
  SpmvPerf perf;
  const double bw = dram_.config().peak_bandwidth_bps;

  // Max Uncompressed: plain CSR at 12 B/nnz, memory-bound (Fig 3).
  perf.max_uncompressed = cpu_.spmv_gflops(12.0, dram_);

  // Decomp(UDP+CPU): streaming compressed data, UDP decodes inline. The
  // UDP pool is provisioned to keep up with the memory interface (the
  // paper's "sufficient number of UDPs" sizing, cheap at ~0.13% die area
  // each), so the sustained nnz rate is set by the slower of (a) the
  // memory interface delivering compressed bytes and (b) the largest
  // provisionable UDP pool producing decompressed 12 B/nnz CSR.
  {
    RECODE_CHECK(p.udp_throughput_bps > 0);
    const double mem_nnz_per_s = bw / p.bytes_per_nnz;
    const double decompressed_bps_needed = mem_nnz_per_s * 12.0;
    perf.udp_accelerators = static_cast<int>(std::min<double>(
        config_.max_udp_accelerators,
        std::ceil(decompressed_bps_needed / p.udp_throughput_bps)));
    const double udp_nnz_per_s =
        p.udp_throughput_bps * perf.udp_accelerators / 12.0;
    const double nnz_per_s = std::min(mem_nnz_per_s, udp_nnz_per_s);
    perf.decomp_udp_cpu =
        std::min(nnz_per_s * 2.0 / 1e9, cpu_.config().peak_gflops);
  }

  // Decomp(CPU) + SpMV: the CPU itself runs the software decoder and then
  // multiplies; decode and multiply compete for the same cores, so the
  // phases serialize (the paper's ">30x slower" bar).
  {
    const double cpu_decode_nnz_per_s = p.cpu_dsh_bps / 12.0;
    const double mem_nnz_per_s = bw / p.bytes_per_nnz;
    const double spmv_nnz_per_s =
        cpu_.spmv_gflops(12.0, dram_) * 1e9 / 2.0;  // post-decode multiply
    const double t_per_nnz = 1.0 / std::min(cpu_decode_nnz_per_s,
                                            mem_nnz_per_s) +
                             1.0 / spmv_nnz_per_s;
    perf.decomp_cpu = (1.0 / t_per_nnz) * 2.0 / 1e9;
  }
  return perf;
}

PowerSavings HeterogeneousSystem::analyze_power(const MatrixProfile& p) const {
  RECODE_CHECK(p.bytes_per_nnz > 0);
  PowerSavings s;
  s.max_memory_power = dram_.max_power_watts();

  // Iso-performance target: the nnz rate of the uncompressed system at
  // peak bandwidth. The compressed system streams bytes_per_nnz instead
  // of 12 B per nnz.
  const double bw = dram_.config().peak_bandwidth_bps;
  const double compressed_bw = bw * (p.bytes_per_nnz / 12.0);
  s.memory_power_used = dram_.power_at_bandwidth(compressed_bw);
  s.raw_saving = s.max_memory_power - s.memory_power_used;

  // UDPs must regenerate decompressed data at the full peak rate
  // ("100GB/s or 1TB/s out from UDPs", §V-B).
  RECODE_CHECK(p.udp_throughput_bps > 0);
  s.udp_accelerators = static_cast<int>(
      std::ceil(bw / p.udp_throughput_bps));
  s.udp_power =
      static_cast<double>(s.udp_accelerators) * config_.udp.power_watts;
  s.net_saving = s.raw_saving - s.udp_power;
  return s;
}

OverlapReport analyze_overlap(const OverlapMeasurement& m) {
  OverlapReport r;
  if (m.fused_workers) {
    // Fused scheduling has no stage boundary to overlap across: the
    // ideal wall is all busy time load-balanced over the worker pool.
    const int wn = m.workers > 0 ? m.workers : 1;
    r.ideal_wall_seconds =
        (m.decode_busy_seconds + m.compute_busy_seconds) / wn;
  } else {
    const int dn = m.decode_workers > 0 ? m.decode_workers : 1;
    const int cn = m.compute_workers > 0 ? m.compute_workers : 1;
    const double decode_wall = m.decode_busy_seconds / dn;
    const double compute_wall = m.compute_busy_seconds / cn;
    r.ideal_wall_seconds = std::max(decode_wall, compute_wall);
  }
  r.serial_wall_seconds = m.decode_busy_seconds + m.compute_busy_seconds;
  const double busy = r.serial_wall_seconds;
  r.decode_fraction = busy > 0 ? m.decode_busy_seconds / busy : 0.0;
  if (m.wall_seconds > 0) {
    r.measured_efficiency = r.ideal_wall_seconds / m.wall_seconds;
    r.overlap_speedup = r.serial_wall_seconds / m.wall_seconds;
  }
  // Publish the derived overlap figures so a metrics snapshot taken after
  // a streaming run carries the Fig 14/15 model inputs next to the raw
  // queue-wait histograms they explain.
  if constexpr (telemetry::kEnabled) {
    auto& reg = telemetry::MetricsRegistry::global();
    reg.gauge("core.overlap.measured_efficiency").set(r.measured_efficiency);
    reg.gauge("core.overlap.overlap_speedup").set(r.overlap_speedup);
    reg.gauge("core.overlap.decode_fraction").set(r.decode_fraction);
  }
  return r;
}

}  // namespace recode::core
