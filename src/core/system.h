// HeterogeneousSystem — the paper's CPU-UDP architecture analysis engine.
//
// Ties together the DRAM model (mem), the CPU model (cpu), the UDP cycle
// simulator (udp/udpprog) and the compression pipeline (codec) to produce
// exactly the quantities the evaluation section plots:
//
//  * analyze_spmv(): sustained SpMV GFLOP/s for the three systems of
//    Figs 14/15 — "Max Uncompressed" (CPU streaming plain CSR),
//    "Decomp(CPU) + SpMV" (CPU does software decompression), and
//    "Decomp(UDP+CPU)" (UDP decompresses at the rate measured on the
//    cycle simulator, CPU multiplies).
//  * analyze_power(): iso-performance memory power savings of Figs 16/17
//    (raw saving, UDP power added, net saving).
//  * decode profile: Figs 12/13 decompression throughput, CPU vs UDP.
//
// Everything here is per-matrix: compression ratio and UDP decode rate
// are properties of the data, which is the paper's core point.
#pragma once

#include <cstdint>
#include <string>

#include "codec/pipeline.h"
#include "cpu/cpu_model.h"
#include "mem/dram.h"
#include "udpprog/matrix_decoder.h"

namespace recode::core {

struct SystemConfig {
  mem::DramConfig dram = mem::DramConfig::ddr4_100gbs();
  cpu::CpuConfig cpu;
  udp::AcceleratorConfig udp;
  // Blocks sampled per matrix when measuring UDP decode rate (0 = all).
  std::size_t udp_sample_blocks = 48;
  // Max 64-lane UDP accelerators the chip can provision. The paper sizes
  // the UDP pool to keep up with the memory interface ("sufficient number
  // of UDPs to meet the desired memory rate", §V-B). Fig 15's HBM2 point
  // implies on the order of 100+ accelerators (decompressed output of
  // several TB/s); at ~0.13% of a 32-core die each (§III-C) that is
  // 10-30% of a die — steep but the paper's stated design point, so the
  // default cap stays out of the way. Lower it to study area-constrained
  // chips.
  int max_udp_accelerators = 256;
};

// Per-matrix measurement bundle everything downstream consumes.
struct MatrixProfile {
  std::string name;
  std::size_t nnz = 0;
  double bytes_per_nnz = 0.0;       // compressed (streamed bytes / nnz)
  double udp_block_micros = 0.0;    // one-lane latency per block
  double udp_throughput_bps = 0.0;  // 64-lane decompressed bytes/sec
  double cpu_snappy_bps = 0.0;      // 32-thread CPU software snappy rate
  double cpu_dsh_bps = 0.0;         // 32-thread CPU software DSH rate
};

struct SpmvPerf {
  // Paper Figs 14/15 series, in GFLOP/s.
  double max_uncompressed = 0.0;  // CPU, plain 12 B/nnz CSR
  double decomp_cpu = 0.0;        // CPU decompresses, then multiplies
  double decomp_udp_cpu = 0.0;    // UDP decompresses, CPU multiplies
  int udp_accelerators = 0;       // UDP pool size provisioned for the run

  double speedup() const {
    return max_uncompressed > 0 ? decomp_udp_cpu / max_uncompressed : 0.0;
  }
};

struct PowerSavings {
  // Paper Figs 16/17, in watts, at iso-performance with the uncompressed
  // system running at peak bandwidth.
  double max_memory_power = 0.0;   // peak BW x energy/bit
  double memory_power_used = 0.0;  // streaming compressed data instead
  double raw_saving = 0.0;         // max - used
  int udp_accelerators = 0;        // count needed to keep up with peak BW
  double udp_power = 0.0;          // count x 0.16 W
  double net_saving = 0.0;         // raw - udp_power

  double saving_fraction() const {
    return max_memory_power > 0 ? net_saving / max_memory_power : 0.0;
  }
};

// Measured decode/compute pipeline profile of one streaming SpMV run
// (filled from spmv::StreamingExecutor::last_stats()). The analytic
// models above assume the UDP decodes *while* the CPU multiplies; this is
// the empirical counterpart measured on the host-side executor.
struct OverlapMeasurement {
  double wall_seconds = 0.0;          // pipelined wall clock
  double decode_busy_seconds = 0.0;   // summed over decode workers
  double compute_busy_seconds = 0.0;  // summed over compute workers
  int decode_workers = 1;
  int compute_workers = 1;
  // Work-stealing fused mode: every worker runs both stages, so the
  // ideal wall is the total busy time spread over `workers`, not the
  // max of two dedicated stages. False keeps the split-pipeline model
  // (dedicated decode_workers / compute_workers).
  bool fused_workers = false;
  int workers = 0;  // used only when fused_workers
};

struct OverlapReport {
  // Wall clock a perfectly overlapped pipeline would need: the slower
  // stage running alone across its workers.
  double ideal_wall_seconds = 0.0;
  // Wall clock of the serial chain (decode then multiply, one thread).
  double serial_wall_seconds = 0.0;
  // ideal / measured wall: 1.0 means the pipeline fully hides the faster
  // stage behind the slower one, the assumption Figs 14/15 encode.
  double measured_efficiency = 0.0;
  // serial / measured wall: the end-to-end win of overlapping + fan-out.
  double overlap_speedup = 0.0;
  // Decode share of total busy time (>= 0.5 means decode-bound, the
  // regime where the paper's UDP offload pays).
  double decode_fraction = 0.0;
};

// Reduces a measured streaming run to the overlap quantities reported
// alongside the analytic analyze_spmv() numbers (EXPERIMENTS.md).
OverlapReport analyze_overlap(const OverlapMeasurement& m);

class HeterogeneousSystem {
 public:
  explicit HeterogeneousSystem(SystemConfig config = {});

  const SystemConfig& config() const { return config_; }
  const mem::DramModel& dram() const { return dram_; }
  const cpu::CpuModel& cpu() const { return cpu_; }

  // Compresses the matrix, runs the UDP simulator on (a sample of) its
  // blocks, and fills the profile. `validate` cross-checks the simulated
  // decode against the source matrix.
  MatrixProfile profile(const std::string& name, const sparse::Csr& csr,
                        const codec::PipelineConfig& pipeline,
                        bool validate = true) const;

  // Same, reusing an already-compressed matrix.
  MatrixProfile profile_compressed(const std::string& name,
                                   const sparse::Csr* csr,
                                   const codec::CompressedMatrix& cm) const;

  // Figs 14/15 analysis for one matrix.
  SpmvPerf analyze_spmv(const MatrixProfile& p) const;

  // Figs 16/17 analysis for one matrix.
  PowerSavings analyze_power(const MatrixProfile& p) const;

 private:
  SystemConfig config_;
  mem::DramModel dram_;
  cpu::CpuModel cpu_;
};

}  // namespace recode::core
