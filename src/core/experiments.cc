#include "core/experiments.h"

#include <fstream>

#include "common/error.h"

namespace recode::core {

CsvRecorder::CsvRecorder(std::string experiment_id,
                         std::vector<std::string> columns)
    : id_(std::move(experiment_id)), columns_(std::move(columns)) {
  RECODE_CHECK(!id_.empty());
  RECODE_CHECK(!columns_.empty());
}

void CsvRecorder::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string CsvRecorder::to_csv() const {
  std::string out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) out += ',';
    out += escape(columns_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

void CsvRecorder::write(const std::string& dir) const {
  const std::string path = dir + "/" + id_ + ".csv";
  std::ofstream out(path);
  if (!out) fail("csv: cannot open for write: " + path);
  out << to_csv();
  if (!out) fail("csv: write failed: " + path);
}

}  // namespace recode::core
