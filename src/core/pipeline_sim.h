// Discrete-event simulation of the steady-state recoded-SpMV pipeline.
//
// The analytic model in system.h assumes perfect rate balance
// (performance = min of the stage rates). This module checks that
// assumption with an event-level simulation of Figure 6's flow:
//
//   DRAM/DMA --compressed blocks--> UDP lanes --CSR blocks--> CPU SpMV
//
// Each block is an event chain: the DMA serializes transfers at the
// memory interface, a finite pool of UDP lanes decodes (per-block
// latency from the cycle simulator), and a bounded staging buffer
// applies back-pressure to the DMA. The simulated completion time
// converges to the analytic bound when buffers are deep enough and
// exposes the start-up/latency effects the closed form hides.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/pipeline.h"
#include "mem/dram.h"

namespace recode::core {

struct PipelineSimConfig {
  mem::DramConfig dram = mem::DramConfig::ddr4_100gbs();
  int udp_lanes = 64;
  double udp_clock_hz = 1.6e9;
  // Decoded-block staging slots between the UDP and the CPU; the DMA
  // stalls when all slots hold blocks not yet consumed.
  int staging_slots = 128;
  // CPU SpMV consumption rate in non-zeros per second (memory-system
  // independent here: the decoded stream is consumed from on-chip
  // buffers). Default: effectively unbounded.
  double cpu_nnz_per_sec = 1e18;
  double dma_overhead_s = 200e-9;  // per block descriptor
};

struct PipelineSimResult {
  double makespan_s = 0.0;
  double dram_busy_s = 0.0;      // time the memory interface streamed data
  double udp_busy_lane_s = 0.0;  // summed lane-busy time
  double dram_utilization = 0.0;
  double udp_utilization = 0.0;
  double achieved_gflops = 0.0;
  std::size_t blocks = 0;
  std::size_t dma_stalls = 0;  // transfers delayed by staging back-pressure
};

// Simulates one full pass over the compressed matrix. `block_cycles`
// holds per-block UDP decode cycles (e.g. sampled from the lane
// simulator and tiled to all blocks); must have one entry per block.
PipelineSimResult simulate_pipeline(const codec::CompressedMatrix& cm,
                                    const std::vector<std::uint64_t>& block_cycles,
                                    const PipelineSimConfig& config = {});

}  // namespace recode::core
