// Experiment recording: every bench can dump its series as CSV next to
// the human-readable table, so figure data feeds straight into plotting
// scripts (the open-source-release workflow for regenerating the paper's
// plots).
#pragma once

#include <string>
#include <vector>

namespace recode::core {

class CsvRecorder {
 public:
  // Columns fixed at construction; rows appended as the bench runs.
  CsvRecorder(std::string experiment_id, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  // RFC-4180-style CSV (quotes applied where needed).
  std::string to_csv() const;

  // Writes `<dir>/<experiment_id>.csv`; creates nothing else. Throws on
  // I/O failure.
  void write(const std::string& dir) const;

 private:
  std::string id_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace recode::core
