#include "core/pipeline_sim.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace recode::core {

PipelineSimResult simulate_pipeline(
    const codec::CompressedMatrix& cm,
    const std::vector<std::uint64_t>& block_cycles,
    const PipelineSimConfig& config) {
  RECODE_CHECK(block_cycles.size() == cm.blocks.size());
  RECODE_CHECK(config.udp_lanes > 0);
  RECODE_CHECK(config.staging_slots > 0);
  RECODE_CHECK(config.cpu_nnz_per_sec > 0);

  PipelineSimResult result;
  result.blocks = cm.blocks.size();
  if (cm.blocks.empty()) return result;

  const mem::DramModel dram(config.dram);

  // Lane pool: min-heap of next-free times.
  std::priority_queue<double, std::vector<double>, std::greater<>> lanes;
  for (int l = 0; l < config.udp_lanes; ++l) lanes.push(0.0);

  // Ring of CPU-completion times for staging back-pressure.
  std::vector<double> slot_release(cm.blocks.size(), 0.0);

  double dma_free = 0.0;
  double cpu_free = 0.0;
  double makespan = 0.0;

  for (std::size_t b = 0; b < cm.blocks.size(); ++b) {
    // Back-pressure: the DMA may not start block b until a staging slot
    // is free (the slot vacated by block b - staging_slots).
    double earliest = dma_free;
    if (b >= static_cast<std::size_t>(config.staging_slots)) {
      const double slot_free =
          slot_release[b - static_cast<std::size_t>(config.staging_slots)];
      if (slot_free > earliest) {
        earliest = slot_free;
        ++result.dma_stalls;
      }
    }

    const double transfer =
        dram.transfer_seconds(cm.blocks[b].bytes()) + config.dma_overhead_s;
    const double dma_done = earliest + transfer;
    dma_free = dma_done;
    result.dram_busy_s += transfer;

    // Earliest-free UDP lane decodes the block.
    const double lane_free = lanes.top();
    lanes.pop();
    const double decode_start = std::max(dma_done, lane_free);
    const double decode_time =
        static_cast<double>(block_cycles[b]) / config.udp_clock_hz;
    const double decode_done = decode_start + decode_time;
    lanes.push(decode_done);
    result.udp_busy_lane_s += decode_time;

    // CPU consumes decoded blocks in order.
    const double consume_time =
        static_cast<double>(cm.blocking.blocks[b].count) /
        config.cpu_nnz_per_sec;
    const double cpu_done = std::max(decode_done, cpu_free) + consume_time;
    cpu_free = cpu_done;
    slot_release[b] = cpu_done;
    makespan = std::max(makespan, cpu_done);
  }

  result.makespan_s = makespan;
  result.dram_utilization = result.dram_busy_s / makespan;
  result.udp_utilization =
      result.udp_busy_lane_s /
      (makespan * static_cast<double>(config.udp_lanes));
  result.achieved_gflops =
      2.0 * static_cast<double>(cm.nnz()) / makespan / 1e9;
  return result;
}

}  // namespace recode::core
