#include "solver/graph.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/error.h"

namespace recode::solver {

FrontierOperator make_frontier_operator(spmv::SpmspvEngine& engine) {
  return [&engine](const spmv::SparseVector& frontier, std::span<double> y) {
    engine.multiply(frontier, y);
  };
}

Operator make_operator(spmv::SpmspvEngine& engine) {
  // One frontier buffer reused across applies (captured by the closure).
  auto frontier = std::make_shared<spmv::SparseVector>();
  return [&engine, frontier](std::span<const double> x, std::span<double> y) {
    frontier->indices.clear();
    frontier->values.clear();
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] != 0.0) {
        frontier->indices.push_back(static_cast<sparse::index_t>(i));
        frontier->values.push_back(x[i]);
      }
    }
    engine.multiply(*frontier, y);
  };
}

BfsResult bfs(const FrontierOperator& push, sparse::index_t n,
              sparse::index_t source) {
  BfsResult result;
  result.level.assign(static_cast<std::size_t>(std::max(n, 0)), -1);
  if (n <= 0) return result;
  RECODE_CHECK(source >= 0 && source < n);

  result.level[static_cast<std::size_t>(source)] = 0;
  result.reached = 1;
  result.max_level = 0;
  result.frontier_peak = 1;

  spmv::SparseVector frontier;
  frontier.indices.push_back(source);
  frontier.values.push_back(1.0);
  spmv::SparseVector next;
  std::vector<double> y(static_cast<std::size_t>(n));

  sparse::index_t depth = 0;
  while (!frontier.indices.empty()) {
    push(frontier, y);
    ++depth;
    next.indices.clear();
    next.values.clear();
    // Fixed ascending scan: the discovery order (and therefore the level
    // assignment) is deterministic for any operator implementation.
    for (sparse::index_t v = 0; v < n; ++v) {
      if (y[static_cast<std::size_t>(v)] != 0.0 &&
          result.level[static_cast<std::size_t>(v)] < 0) {
        result.level[static_cast<std::size_t>(v)] = depth;
        next.indices.push_back(v);
        next.values.push_back(1.0);
      }
    }
    if (next.indices.empty()) break;
    result.reached += next.indices.size();
    result.max_level = depth;
    result.frontier_peak =
        std::max<std::uint64_t>(result.frontier_peak, next.indices.size());
    std::swap(frontier, next);
  }
  return result;
}

BfsResult bfs(spmv::SpmspvEngine& push_engine, sparse::index_t source) {
  RECODE_CHECK(push_engine.rows() == push_engine.cols());
  return bfs(make_frontier_operator(push_engine), push_engine.rows(), source);
}

PageRankResult pagerank(const Operator& apply,
                        std::span<const std::uint8_t> dangling,
                        const PageRankOptions& opts) {
  PageRankResult result;
  const std::size_t n = dangling.size();
  if (n == 0) {
    result.converged = true;
    return result;
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  result.rank.assign(n, inv_n);
  std::vector<double> next(n);

  while (result.iterations < opts.max_iters) {
    apply(result.rank, next);
    double dangling_mass = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (dangling[i] != 0) dangling_mass += result.rank[i];
    }
    const double base =
        (1.0 - opts.damping) * inv_n + opts.damping * dangling_mass * inv_n;
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = base + opts.damping * next[i];
      delta += std::abs(v - result.rank[i]);
      result.rank[i] = v;
    }
    ++result.iterations;
    result.delta = delta;
    if (delta <= opts.tol) {
      result.converged = true;
      break;
    }
  }
  return result;
}

sparse::Csr make_pagerank_matrix(const sparse::Csr& adj,
                                 std::vector<std::uint8_t>* dangling) {
  RECODE_CHECK(adj.rows == adj.cols);
  const auto n = static_cast<std::size_t>(adj.rows);
  if (dangling) dangling->assign(n, 0);

  sparse::Csr normalized = adj;
  for (std::size_t r = 0; r < n; ++r) {
    const auto begin = static_cast<std::size_t>(adj.row_ptr[r]);
    const auto end = static_cast<std::size_t>(adj.row_ptr[r + 1]);
    if (begin == end) {
      if (dangling) (*dangling)[r] = 1;
      continue;
    }
    const double w = 1.0 / static_cast<double>(end - begin);
    for (std::size_t k = begin; k < end; ++k) normalized.val[k] = w;
  }
  return sparse::transpose(normalized);
}

}  // namespace recode::solver
