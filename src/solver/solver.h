// Iterative-solver drivers over the recoded SpMV operators.
//
// The paper's recoding argument is strongest exactly here: conjugate
// gradient and power iteration multiply the same matrix hundreds of
// times, so a block is decoded many times per encode (the SMASH-style
// amortization) and a decoded-band cache (StreamingConfig::
// cache_budget_bytes) can trade pinned memory for skipped decode work
// iteration after iteration.
//
// Determinism contract: both drivers are deterministic host loops —
// fixed-order dot products, no reductions that depend on thread count —
// so given an operator whose applications are bitwise-reproducible
// (serial RecodedSpmv, StreamingExecutor at any thread count / cache
// budget / engine), the returned vectors are bitwise-identical across
// all of those configurations. The solver test suite asserts this with
// memcmp, not tolerances.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace recode::spmv {
class StreamingExecutor;
class RecodedSpmv;
}  // namespace recode::spmv

namespace recode::solver {

// y = A*x. Any bitwise-reproducible SpMV fits: RecodedSpmv,
// StreamingExecutor, or a test closure over a dense reference.
using Operator =
    std::function<void(std::span<const double>, std::span<double>)>;

// Adapters for the two engine classes (the executor overloads are what
// the benches and examples use; the Operator form is what tests use to
// mix engines mid-solve).
Operator make_operator(spmv::StreamingExecutor& exec);
Operator make_operator(spmv::RecodedSpmv& spmv);

struct CgOptions {
  int max_iters = 1000;
  // Stop when ||r||_2 / ||b||_2 <= tol (relative residual, the usual CG
  // stopping rule; b == 0 solves to x == 0 immediately).
  double tol = 1e-10;
};

struct CgResult {
  std::vector<double> x;
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

// Unpreconditioned conjugate gradient for SPD A. One operator
// application per iteration (plus one to seed the residual when x0 is
// nonzero — this driver starts from x0 = 0, so exactly `iterations`
// applications total).
CgResult conjugate_gradient(const Operator& apply, std::span<const double> b,
                            const CgOptions& opts = {});

struct PowerIterationOptions {
  int max_iters = 1000;
  // Stop when |lambda_k - lambda_{k-1}| <= tol * |lambda_k|.
  double tol = 1e-10;
  // Seed for the deterministic pseudo-random start vector.
  std::uint64_t seed = 1;
};

struct PowerIterationResult {
  std::vector<double> eigenvector;  // normalized (2-norm 1)
  double eigenvalue = 0.0;          // Rayleigh quotient at the last iterate
  int iterations = 0;
  bool converged = false;
};

// Power iteration for the dominant eigenpair of A (n = dimension of the
// operator's domain). One operator application per iteration.
PowerIterationResult power_iteration(const Operator& apply, std::size_t n,
                                     const PowerIterationOptions& opts = {});

}  // namespace recode::solver
