// Graph-workload drivers over the sparse kernels: deterministic BFS and
// PageRank, the scenario family SpMSpV opens (ROADMAP item 3 — graph
// frontiers are exactly the sparse vectors the frontier-driven kernel
// skips blocks against).
//
// Both drivers are deterministic host loops in the solver.h tradition:
// fixed-order scans, no thread-count-dependent reductions. Given
// operators whose applications are bitwise-reproducible (SpmspvEngine at
// any thread count, serial RecodedSpmv, StreamingExecutor, or a dense
// test closure), the returned levels/ranks are bitwise-identical across
// all of them — the graph test suite asserts this with memcmp.
//
// Direction convention: the adjacency A stores edge u -> v as A[u][v].
// BFS pushes along edges, so its operator answers "which vertices
// receive an edge from the frontier" — that is y = A^T * frontier. Build
// the SpMSpV engine over transpose(A) (or the PageRank matrix below,
// which is already transposed).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "solver/solver.h"
#include "sparse/formats.h"
#include "spmv/spmspv.h"

namespace recode::solver {

// Frontier push: y = M * frontier for the engine's matrix M (y dense,
// overwritten). With M = A^T, y[v] != 0 marks v as reached from the
// frontier this step (requires nonnegative edge weights — cancellation
// could otherwise zero a reached vertex).
using FrontierOperator =
    std::function<void(const spmv::SparseVector&, std::span<double>)>;

FrontierOperator make_frontier_operator(spmv::SpmspvEngine& engine);

// Dense-operator adapter for SpmspvEngine: wraps the dense x in a
// frontier of its nonzero entries. Because SpMSpV is bitwise-identical
// to the dense kernel for any frontier covering the nonzeros, this
// Operator is interchangeable with make_operator(RecodedSpmv&) down to
// the last bit — what lets the PageRank driver run frontier-driven and
// still match the dense-SpMV-driven reference exactly.
Operator make_operator(spmv::SpmspvEngine& engine);

struct BfsResult {
  std::vector<sparse::index_t> level;  // -1 = unreachable
  sparse::index_t max_level = -1;      // depth of the deepest reached vertex
  std::uint64_t reached = 0;           // vertices with level >= 0
  std::uint64_t frontier_peak = 0;     // largest frontier of the run
};

// Level-synchronous BFS from `source` over a graph with n vertices.
// push must be the A^T frontier operator (see above).
BfsResult bfs(const FrontierOperator& push, sparse::index_t n,
              sparse::index_t source);

// Convenience: BFS driven by an SpmspvEngine built over transpose(A).
BfsResult bfs(spmv::SpmspvEngine& push_engine, sparse::index_t source);

struct PageRankOptions {
  double damping = 0.85;
  double tol = 1e-10;  // L1 delta between successive rank vectors
  int max_iters = 200;
};

struct PageRankResult {
  std::vector<double> rank;
  int iterations = 0;
  double delta = 0.0;
  bool converged = false;
};

// Deterministic PageRank: rank <- (1-d)/n + d*(P*rank + dangling mass/n)
// where P = make_pagerank_matrix(adj) and dangling[u] != 0 marks
// zero-out-degree vertices whose mass redistributes uniformly. `apply`
// must compute y = P*x.
PageRankResult pagerank(const Operator& apply,
                        std::span<const std::uint8_t> dangling,
                        const PageRankOptions& opts = {});

// P = (D^-1 A)^T for out-degree D, treating adj structurally (each edge
// weighs 1/out_degree regardless of stored value — the unweighted
// PageRank convention). Fills `dangling` (resized to n) with the
// zero-out-degree mask.
sparse::Csr make_pagerank_matrix(const sparse::Csr& adj,
                                 std::vector<std::uint8_t>* dangling);

}  // namespace recode::solver
