#include "solver/solver.h"

#include <cmath>

#include "common/error.h"
#include "common/prng.h"
#include "spmv/recoded.h"
#include "spmv/streaming_executor.h"
#include "telemetry/telemetry.h"

namespace recode::solver {

namespace {

struct SolverTelemetry {
  telemetry::Counter& cg_solves;
  telemetry::Counter& cg_iterations;
  telemetry::Counter& power_solves;
  telemetry::Counter& power_iterations;

  static SolverTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static SolverTelemetry* t = new SolverTelemetry{
        reg.counter("solver.cg.solves"),
        reg.counter("solver.cg.iterations"),
        reg.counter("solver.power.solves"),
        reg.counter("solver.power.iterations"),
    };
    return *t;
  }
};

// Fixed-order sequential dot product — the determinism anchor: no
// vectorized reassociation the compiler could vary between call sites.
double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

Operator make_operator(spmv::StreamingExecutor& exec) {
  return [&exec](std::span<const double> x, std::span<double> y) {
    exec.multiply(x, y);
  };
}

Operator make_operator(spmv::RecodedSpmv& spmv) {
  return [&spmv](std::span<const double> x, std::span<double> y) {
    spmv.multiply(x, y);
  };
}

CgResult conjugate_gradient(const Operator& apply, std::span<const double> b,
                            const CgOptions& opts) {
  RECODE_CHECK(opts.max_iters >= 0);
  SolverTelemetry& telem = SolverTelemetry::get();
  telem.cg_solves.add(1);
  const std::size_t n = b.size();

  CgResult result;
  result.x.assign(n, 0.0);
  // x0 = 0, so r0 = b and no seeding multiply is needed.
  std::vector<double> r(b.begin(), b.end());
  std::vector<double> p = r;
  std::vector<double> ap(n);
  double rr = dot(r, r);
  const double bb = rr;
  if (bb == 0.0) {  // b == 0 solves to x == 0 exactly
    result.converged = true;
    return result;
  }
  const double stop = opts.tol * opts.tol * bb;  // ||r||^2 <= (tol ||b||)^2

  int iters = 0;
  for (; iters < opts.max_iters && rr > stop; ++iters) {
    RECODE_TRACE_SPAN_ARG("solver", "cg_iteration", "iter",
                          static_cast<std::uint64_t>(iters));
    apply(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // not SPD (or breakdown): report non-converged
    const double alpha = rr / pap;
    for (std::size_t i = 0; i < n; ++i) {
      result.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }

  telem.cg_iterations.add(static_cast<std::uint64_t>(iters));
  result.iterations = iters;
  result.relative_residual = std::sqrt(rr / bb);
  result.converged = rr <= stop;
  return result;
}

PowerIterationResult power_iteration(const Operator& apply, std::size_t n,
                                     const PowerIterationOptions& opts) {
  RECODE_CHECK(opts.max_iters >= 0);
  SolverTelemetry& telem = SolverTelemetry::get();
  telem.power_solves.add(1);

  PowerIterationResult result;
  result.eigenvector.assign(n, 0.0);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Deterministic pseudo-random start vector: a fixed vector (e.g. all
  // ones) can be orthogonal to the dominant eigenvector; a seeded random
  // one almost never is, and stays reproducible.
  std::vector<double> v(n);
  Prng prng(opts.seed);
  for (auto& x : v) x = prng.next_double() * 2.0 - 1.0;
  double norm = std::sqrt(dot(v, v));
  if (norm == 0.0) {
    v[0] = 1.0;
    norm = 1.0;
  }
  for (auto& x : v) x /= norm;

  std::vector<double> w(n);
  double lambda = 0.0;
  int iters = 0;
  bool converged = false;
  for (; iters < opts.max_iters; ++iters) {
    RECODE_TRACE_SPAN_ARG("solver", "power_iteration", "iter",
                          static_cast<std::uint64_t>(iters));
    apply(v, w);
    // ||v|| == 1, so the Rayleigh quotient is just v . Av.
    const double lambda_new = dot(v, w);
    norm = std::sqrt(dot(w, w));
    if (norm == 0.0) {
      // A v == 0: v is an exact null vector; eigenvalue 0, converged.
      lambda = 0.0;
      converged = true;
      ++iters;
      break;
    }
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / norm;
    const bool settled =
        std::abs(lambda_new - lambda) <= opts.tol * std::abs(lambda_new);
    lambda = lambda_new;
    if (iters > 0 && settled) {
      converged = true;
      ++iters;
      break;
    }
  }

  telem.power_iterations.add(static_cast<std::uint64_t>(iters));
  result.eigenvector = std::move(v);
  result.eigenvalue = lambda;
  result.iterations = iters;
  result.converged = converged;
  return result;
}

}  // namespace recode::solver
