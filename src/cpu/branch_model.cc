#include "cpu/branch_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace recode::cpu {

DictionaryDecodeModel::DictionaryDecodeModel(BranchModelConfig config)
    : config_(config) {
  RECODE_CHECK(config_.base_cycles_per_symbol > 0);
  RECODE_CHECK(config_.flush_penalty_cycles >= 0);
  RECODE_CHECK(config_.clock_hz > 0);
}

double DictionaryDecodeModel::byte_entropy(codec::ByteSpan data) {
  if (data.empty()) return 0.0;
  std::array<std::uint64_t, 256> hist{};
  for (std::uint8_t b : data) ++hist[b];
  double h = 0.0;
  const double n = static_cast<double>(data.size());
  for (std::uint64_t c : hist) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h;
}

double DictionaryDecodeModel::mispredict_rate(double entropy_bits) const {
  const double h = std::max(0.0, entropy_bits);
  return std::clamp(1.0 - std::exp2(-h), 0.0, 1.0);
}

double DictionaryDecodeModel::cycles_per_symbol(double entropy_bits) const {
  return config_.base_cycles_per_symbol +
         mispredict_rate(entropy_bits) * config_.flush_penalty_cycles;
}

double DictionaryDecodeModel::wasted_cycle_fraction(
    double entropy_bits) const {
  const double flush =
      mispredict_rate(entropy_bits) * config_.flush_penalty_cycles;
  return flush / (config_.base_cycles_per_symbol + flush);
}

double DictionaryDecodeModel::throughput_bps(double entropy_bits) const {
  return config_.clock_hz / cycles_per_symbol(entropy_bits);
}

}  // namespace recode::cpu
