// Analytic model of dictionary decode on a conventional CPU pipeline —
// the quantitative backing for the paper's §III-E claim that operation
// dispatch in decoders suffers "poor branch prediction ... which can
// lead to 80% cycle waste due to frequent pipeline flushes".
//
// Dictionary decoders dispatch on a data-dependent symbol (an indirect
// branch). A predictor's best case is guessing the most likely target,
// so its hit rate is bounded by the symbol distribution's skew. We model
// the mispredict rate from the dispatch-symbol entropy H as
//
//   p_miss ≈ 1 - 2^{-H}
//
// (exact for the ideal static predictor on a geometric-like
// distribution: the most likely target has probability ~2^{-H}), and
// charge a full pipeline flush per miss. The UDP's multi-way dispatch
// pays 1 cycle regardless — no prediction, no flush — which is the whole
// architectural argument.
#pragma once

#include <array>
#include <cstdint>

#include "codec/codec.h"

namespace recode::cpu {

struct BranchModelConfig {
  double base_cycles_per_symbol = 4.0;  // useful decode work per symbol
  double flush_penalty_cycles = 16.0;   // modern OoO pipeline refill
  double clock_hz = 2.3e9;              // Xeon E5-2670v3 class
};

class DictionaryDecodeModel {
 public:
  explicit DictionaryDecodeModel(BranchModelConfig config = {});

  const BranchModelConfig& config() const { return config_; }

  // Shannon entropy (bits/symbol) of a byte stream.
  static double byte_entropy(codec::ByteSpan data);

  // Modeled indirect-branch mispredict rate for dispatch-symbol entropy
  // H bits (clamped to [0, 1)).
  double mispredict_rate(double entropy_bits) const;

  // Cycles per decoded symbol including flush penalties.
  double cycles_per_symbol(double entropy_bits) const;

  // Fraction of cycles lost to pipeline flushes — the paper's "cycle
  // waste" number (~0.8 at typical compressed-stream entropies).
  double wasted_cycle_fraction(double entropy_bits) const;

  // Single-core decode throughput in symbols (bytes) per second.
  double throughput_bps(double entropy_bits) const;

 private:
  BranchModelConfig config_;
};

}  // namespace recode::cpu
