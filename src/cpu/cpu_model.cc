#include "cpu/cpu_model.h"

#include <algorithm>

#include "common/error.h"
#include "common/timer.h"

namespace recode::cpu {

CpuModel::CpuModel(CpuConfig config) : config_(std::move(config)) {
  RECODE_CHECK(config_.threads >= 1);
  RECODE_CHECK(config_.parallel_efficiency > 0 &&
               config_.parallel_efficiency <= 1.0);
}

double CpuModel::spmv_gflops(double bytes_per_nnz,
                             const mem::DramModel& dram) const {
  RECODE_CHECK(bytes_per_nnz > 0);
  const double nnz_per_sec =
      dram.config().peak_bandwidth_bps / bytes_per_nnz;
  const double mem_bound_gflops = nnz_per_sec * 2.0 / 1e9;
  return std::min(mem_bound_gflops, config_.peak_gflops);
}

double CpuModel::scaled(double single_thread_bps) const {
  return single_thread_bps * static_cast<double>(config_.threads) *
         config_.parallel_efficiency;
}

double CpuModel::snappy_decode_bps() const {
  return scaled(config_.snappy_decode_bps_1t);
}

double CpuModel::dsh_decode_bps() const {
  return scaled(config_.dsh_decode_bps_1t);
}

namespace {

double time_decode(const codec::CompressedMatrix& cm, double min_seconds) {
  std::vector<sparse::index_t> indices;
  std::vector<double> values;
  recode::Timer timer;
  std::uint64_t decoded_bytes = 0;
  int rounds = 0;
  do {
    for (std::size_t b = 0; b < cm.blocks.size(); ++b) {
      codec::decompress_block(cm, b, indices, values);
      decoded_bytes += cm.blocking.blocks[b].count * 12;
    }
    ++rounds;
  } while (timer.seconds() < min_seconds);
  (void)rounds;
  const double s = timer.seconds();
  return s > 0 ? static_cast<double>(decoded_bytes) / s : 0.0;
}

}  // namespace

HostThroughput measure_host_decode_throughput(const sparse::Csr& csr,
                                              double min_seconds) {
  HostThroughput result;
  const auto snappy_cm =
      codec::compress(csr, codec::PipelineConfig::cpu_snappy());
  const auto dsh_cm = codec::compress(csr, codec::PipelineConfig::udp_dsh());
  result.snappy_decode_bps = time_decode(snappy_cm, min_seconds);
  result.dsh_decode_bps = time_decode(dsh_cm, min_seconds);
  return result;
}

}  // namespace recode::cpu
