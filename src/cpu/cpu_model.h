// CPU performance model for SpMV and software decompression.
//
// SpMV on a multicore CPU saturates memory bandwidth long before compute
// (paper Fig 3): even a few cores keep up with 100 GB/s, so sustained
// GFLOP/s is bandwidth / bytes-per-nnz x 2 flops, capped by the compute
// roofline for completeness.
//
// The CPU decompression baseline ("Decomp(CPU)") scales a measured
// single-thread software decode rate by thread count and a parallel
// efficiency factor — the same methodology the paper applies to its
// 2x12-core Xeon E5-2670v3 host. measure_host_decode_throughput() runs
// the actual software codecs on the build host to ground the model in a
// real measurement.
#pragma once

#include <cstdint>
#include <string>

#include "codec/pipeline.h"
#include "mem/dram.h"

namespace recode::cpu {

struct CpuConfig {
  std::string name = "xeon-2x12c-2.3GHz";
  int threads = 32;                  // the paper's CPU baseline width
  double parallel_efficiency = 0.85;
  double peak_gflops = 800.0;        // FP64 compute roofline (not binding)
  // Single-thread software decode rates in decompressed bytes/sec.
  // Calibrated so the 32-thread aggregate lands where the paper's Fig 12
  // CPU bars sit (~5-10 GB/s): multi-threaded Snappy on a 2x12-core Xeon
  // is memory- and sync-limited well below 32x the single-stream peak.
  // Override with measure_host_decode_throughput() when a real host
  // measurement is preferred.
  double snappy_decode_bps_1t = 0.35e9;
  double dsh_decode_bps_1t = 0.25e9;  // full Delta-Snappy-Huffman pipeline
};

class CpuModel {
 public:
  explicit CpuModel(CpuConfig config = {});

  const CpuConfig& config() const { return config_; }

  // Sustained SpMV GFLOP/s when each non-zero costs `bytes_per_nnz` of
  // memory traffic (2 flops per non-zero).
  double spmv_gflops(double bytes_per_nnz, const mem::DramModel& dram) const;

  // Aggregate software decompression throughput (decompressed bytes/sec)
  // across all threads.
  double snappy_decode_bps() const;
  double dsh_decode_bps() const;

 private:
  double scaled(double single_thread_bps) const;

  CpuConfig config_;
};

// Measured single-thread decode rates of this library's software codecs
// on the build host, in decompressed bytes/sec.
struct HostThroughput {
  double snappy_decode_bps = 0.0;  // snappy-only pipeline
  double dsh_decode_bps = 0.0;     // full delta+snappy+huffman pipeline
};

// Times decompression of `cm` (and a snappy-only recompression of the
// same matrix) on the calling thread. `min_seconds` bounds the repeat
// loop per codec.
HostThroughput measure_host_decode_throughput(const sparse::Csr& csr,
                                              double min_seconds = 0.1);

}  // namespace recode::cpu
