#include "telemetry/ledger.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.h"
#include "common/table.h"
#include "telemetry/json_writer.h"

namespace recode::telemetry {

namespace {

constexpr Hop kAllHops[kHopCount] = {Hop::kStorage, Hop::kContainer,
                                     Hop::kHuffman, Hop::kSnappy,
                                     Hop::kTransform, Hop::kCache,
                                     Hop::kKernel};

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// The bytes a hop "moved": its output, except for the kernel, which is
// a sink — what it consumed is the meaningful flow.
std::uint64_t moved_bytes(const LedgerSnapshot& s, Hop h) {
  const LedgerSnapshot::Flow& f = s.hop(h);
  return h == Hop::kKernel ? f.bytes_in : f.bytes_out;
}

std::string format_bytes(std::uint64_t b) {
  char buf[32];
  if (b >= 100ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", static_cast<double>(b) / 1e6);
  } else if (b >= 100 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", static_cast<double>(b) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(b));
  }
  return buf;
}

}  // namespace

const char* hop_name(Hop hop) {
  switch (hop) {
    case Hop::kStorage: return "storage";
    case Hop::kContainer: return "container";
    case Hop::kHuffman: return "huffman";
    case Hop::kSnappy: return "snappy";
    case Hop::kTransform: return "transform";
    case Hop::kCache: return "cache";
    case Hop::kKernel: return "kernel";
  }
  return "?";
}

LedgerSnapshot LedgerSnapshot::since(const LedgerSnapshot& earlier) const {
  LedgerSnapshot d;
  for (int i = 0; i < kHopCount; ++i) {
    d.hops[i].bytes_in = hops[i].bytes_in - earlier.hops[i].bytes_in;
    d.hops[i].bytes_out = hops[i].bytes_out - earlier.hops[i].bytes_out;
    d.hops[i].ns = hops[i].ns - earlier.hops[i].ns;
    d.hops[i].ops = hops[i].ops - earlier.hops[i].ops;
  }
  d.kernel_vector_bytes = kernel_vector_bytes - earlier.kernel_vector_bytes;
  d.kernel_flops = kernel_flops - earlier.kernel_flops;
  d.kernel_nnz = kernel_nnz - earlier.kernel_nnz;
  return d;
}

MovementLedger::MovementLedger()
    : hops_{
          {MetricsRegistry::global().counter("ledger.storage.bytes_in"),
           MetricsRegistry::global().counter("ledger.storage.bytes_out"),
           MetricsRegistry::global().counter("ledger.storage.ns"),
           MetricsRegistry::global().counter("ledger.storage.ops")},
          {MetricsRegistry::global().counter("ledger.container.bytes_in"),
           MetricsRegistry::global().counter("ledger.container.bytes_out"),
           MetricsRegistry::global().counter("ledger.container.ns"),
           MetricsRegistry::global().counter("ledger.container.ops")},
          {MetricsRegistry::global().counter("ledger.huffman.bytes_in"),
           MetricsRegistry::global().counter("ledger.huffman.bytes_out"),
           MetricsRegistry::global().counter("ledger.huffman.ns"),
           MetricsRegistry::global().counter("ledger.huffman.ops")},
          {MetricsRegistry::global().counter("ledger.snappy.bytes_in"),
           MetricsRegistry::global().counter("ledger.snappy.bytes_out"),
           MetricsRegistry::global().counter("ledger.snappy.ns"),
           MetricsRegistry::global().counter("ledger.snappy.ops")},
          {MetricsRegistry::global().counter("ledger.transform.bytes_in"),
           MetricsRegistry::global().counter("ledger.transform.bytes_out"),
           MetricsRegistry::global().counter("ledger.transform.ns"),
           MetricsRegistry::global().counter("ledger.transform.ops")},
          {MetricsRegistry::global().counter("ledger.cache.bytes_in"),
           MetricsRegistry::global().counter("ledger.cache.bytes_out"),
           MetricsRegistry::global().counter("ledger.cache.ns"),
           MetricsRegistry::global().counter("ledger.cache.ops")},
          {MetricsRegistry::global().counter("ledger.kernel.bytes_in"),
           MetricsRegistry::global().counter("ledger.kernel.bytes_out"),
           MetricsRegistry::global().counter("ledger.kernel.ns"),
           MetricsRegistry::global().counter("ledger.kernel.ops")},
      },
      kernel_vector_bytes_(
          MetricsRegistry::global().counter("ledger.kernel.vector_bytes")),
      kernel_flops_(MetricsRegistry::global().counter("ledger.kernel.flops")),
      kernel_nnz_(MetricsRegistry::global().counter("ledger.kernel.nnz")) {}

MovementLedger& MovementLedger::global() {
  static MovementLedger* ledger = new MovementLedger();  // never dies
  return *ledger;
}

LedgerSnapshot MovementLedger::snapshot() const {
  LedgerSnapshot s;
  for (int i = 0; i < kHopCount; ++i) {
    s.hops[i].bytes_in = hops_[i].bytes_in.value();
    s.hops[i].bytes_out = hops_[i].bytes_out.value();
    s.hops[i].ns = hops_[i].ns.value();
    s.hops[i].ops = hops_[i].ops.value();
  }
  s.kernel_vector_bytes = kernel_vector_bytes_.value();
  s.kernel_flops = kernel_flops_.value();
  s.kernel_nnz = kernel_nnz_.value();
  return s;
}

double RunReport::hop_wall_gbps(Hop h) const {
  if (wall_seconds <= 0.0) return kNaN;
  return static_cast<double>(moved_bytes(flows, h)) / wall_seconds / 1e9;
}

double RunReport::hop_busy_gbps(Hop h) const {
  const std::uint64_t ns = flows.hop(h).ns;
  if (ns == 0) return kNaN;
  return static_cast<double>(moved_bytes(flows, h)) /
         (static_cast<double>(ns) / 1e9) / 1e9;
}

double RunReport::compressed_bytes_per_nnz() const {
  if (flows.kernel_nnz == 0) return kNaN;
  return static_cast<double>(flows.hop(Hop::kContainer).bytes_in) /
         static_cast<double>(flows.kernel_nnz);
}

double RunReport::decoded_bytes_per_nnz() const {
  if (flows.kernel_nnz == 0) return kNaN;
  return static_cast<double>(flows.hop(Hop::kTransform).bytes_out) /
         static_cast<double>(flows.kernel_nnz);
}

double RunReport::kernel_bytes_per_nnz() const {
  if (flows.kernel_nnz == 0) return kNaN;
  return static_cast<double>(flows.hop(Hop::kKernel).bytes_in +
                             flows.kernel_vector_bytes) /
         static_cast<double>(flows.kernel_nnz);
}

double RunReport::arithmetic_intensity() const {
  const std::uint64_t bytes =
      flows.hop(Hop::kKernel).bytes_in + flows.kernel_vector_bytes;
  if (bytes == 0) return kNaN;
  return static_cast<double>(flows.kernel_flops) / static_cast<double>(bytes);
}

double RunReport::cache_served_fraction() const {
  const std::uint64_t consumed = flows.hop(Hop::kKernel).bytes_in;
  if (consumed == 0) return kNaN;
  return static_cast<double>(flows.hop(Hop::kCache).bytes_out) /
         static_cast<double>(consumed);
}

double RunReport::decode_served_fraction() const {
  const std::uint64_t consumed = flows.hop(Hop::kKernel).bytes_in;
  if (consumed == 0) return kNaN;
  return static_cast<double>(flows.hop(Hop::kTransform).bytes_out) /
         static_cast<double>(consumed);
}

double RunReport::storage_bytes_per_kernel_byte() const {
  const std::uint64_t consumed = flows.hop(Hop::kKernel).bytes_in;
  if (consumed == 0) return kNaN;
  return static_cast<double>(flows.hop(Hop::kContainer).bytes_in) /
         static_cast<double>(consumed);
}

bool RunReport::conservation_check(std::string* why) const {
  const auto fail_edge = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  const auto eq = [&](std::uint64_t a, std::uint64_t b,
                      const char* edge) {
    if (a == b) return true;
    if (why != nullptr) {
      *why = std::string(edge) + ": " + std::to_string(a) +
             " != " + std::to_string(b);
    }
    return false;
  };
  const LedgerSnapshot& f = flows;
  // The storage edge only binds when the window saw any storage flow at
  // all: fully-resident runs never touch the hop and legitimately start
  // the chain at `container`.
  const LedgerSnapshot::Flow& st = f.hop(Hop::kStorage);
  if ((st.ops > 0 || st.bytes_in > 0 || st.bytes_out > 0) &&
      !eq(st.bytes_out, f.hop(Hop::kContainer).bytes_in,
          "storage.out vs container.in")) {
    return false;
  }
  if (!eq(f.hop(Hop::kContainer).bytes_out, f.hop(Hop::kHuffman).bytes_in,
          "container.out vs huffman.in")) {
    return false;
  }
  if (!eq(f.hop(Hop::kHuffman).bytes_out, f.hop(Hop::kSnappy).bytes_in,
          "huffman.out vs snappy.in")) {
    return false;
  }
  if (!eq(f.hop(Hop::kSnappy).bytes_out, f.hop(Hop::kTransform).bytes_in,
          "snappy.out vs transform.in")) {
    return false;
  }
  // The kernel edge only binds when a kernel actually ran in the window
  // (decode-only runs — rcm_tool info --report — legitimately stop at
  // the transform hop).
  if (f.hop(Hop::kKernel).ops > 0 &&
      !eq(f.hop(Hop::kTransform).bytes_out + f.hop(Hop::kCache).bytes_out,
          f.hop(Hop::kKernel).bytes_in,
          "decoded + cache-served vs kernel-consumed")) {
    return false;
  }
  if (f.hop(Hop::kCache).bytes_in > f.hop(Hop::kTransform).bytes_out) {
    return fail_edge("cache.in " +
                     std::to_string(f.hop(Hop::kCache).bytes_in) +
                     " exceeds decoded bytes " +
                     std::to_string(f.hop(Hop::kTransform).bytes_out));
  }
  return true;
}

void RunReport::to_json(JsonWriter& w) const {
  std::string why;
  const bool ok = conservation_check(&why);
  w.begin_object();
  w.kv("schema", "recode-run-v1");
  w.kv("label", label);
  if (!engine.empty()) w.kv("engine", engine);
  w.kv("telemetry_enabled", kEnabled);
  w.kv("wall_seconds", wall_seconds);
  w.kv("host_cores", static_cast<std::uint64_t>(host_cores));
  w.kv("conservation_ok", ok);
  if (!ok) w.kv("conservation_error", std::string_view(why));
  w.key("hops");
  w.begin_object();
  for (const Hop h : kAllHops) {
    const LedgerSnapshot::Flow& f = flows.hop(h);
    w.key(hop_name(h));
    w.begin_object();
    w.kv("bytes_in", f.bytes_in);
    w.kv("bytes_out", f.bytes_out);
    w.kv("ns", f.ns);
    w.kv("ops", f.ops);
    w.kv("wall_gbps", hop_wall_gbps(h));
    w.kv("busy_gbps", hop_busy_gbps(h));
    w.end_object();
  }
  w.end_object();
  w.key("kernel");
  w.begin_object();
  w.kv("vector_bytes", flows.kernel_vector_bytes);
  w.kv("flops", flows.kernel_flops);
  w.kv("nnz", flows.kernel_nnz);
  w.end_object();
  w.key("roofline");
  w.begin_object();
  w.kv("compressed_bytes_per_nnz", compressed_bytes_per_nnz());
  w.kv("decoded_bytes_per_nnz", decoded_bytes_per_nnz());
  w.kv("kernel_bytes_per_nnz", kernel_bytes_per_nnz());
  w.kv("arithmetic_intensity", arithmetic_intensity());
  w.kv("cache_served_fraction", cache_served_fraction());
  w.kv("decode_served_fraction", decode_served_fraction());
  w.kv("storage_bytes_per_kernel_byte", storage_bytes_per_kernel_byte());
  w.end_object();
  w.end_object();
}

std::string RunReport::to_json_string() const {
  JsonWriter w;
  to_json(w);
  return w.take();
}

std::string RunReport::render_table() const {
  std::string out;
  out += "movement ledger";
  if (!label.empty()) out += ": " + label;
  if (!engine.empty()) out += " (" + engine + ")";
  char buf[96];
  std::snprintf(buf, sizeof(buf), ", %.1f ms wall\n", wall_seconds * 1e3);
  out += buf;

  Table t({"hop", "bytes in", "bytes out", "ops", "busy ms", "wall GB/s",
           "busy GB/s"});
  for (const Hop h : kAllHops) {
    const LedgerSnapshot::Flow& f = flows.hop(h);
    const double busy = hop_busy_gbps(h);
    t.add_row({hop_name(h), format_bytes(f.bytes_in),
               format_bytes(f.bytes_out), std::to_string(f.ops),
               Table::num(static_cast<double>(f.ns) / 1e6, 2),
               Table::num(hop_wall_gbps(h), 2),
               std::isnan(busy) ? "-" : Table::num(busy, 2)});
  }
  out += t.to_string();

  std::string why;
  const bool ok = conservation_check(&why);
  out += "conservation: ";
  out += ok ? "OK" : ("FAIL (" + why + ")");
  out += "\n";
  if (flows.kernel_nnz > 0) {
    std::snprintf(buf, sizeof(buf),
                  "roofline: %.2f B/nnz compressed, %.2f B/nnz decoded, "
                  "%.2f B/nnz kernel\n",
                  compressed_bytes_per_nnz(), decoded_bytes_per_nnz(),
                  kernel_bytes_per_nnz());
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "served: %.1f%% cache, %.1f%% decode; AI %.3f flop/B\n",
                  100.0 * cache_served_fraction(),
                  100.0 * decode_served_fraction(), arithmetic_intensity());
    out += buf;
  }
  return out;
}

RunReport make_run_report(const std::string& label,
                          const LedgerSnapshot& begin,
                          const LedgerSnapshot& end, double wall_seconds) {
  RunReport r;
  r.label = label;
  r.wall_seconds = wall_seconds;
  r.flows = end.since(begin);
  return r;
}

void write_run_report_file(const std::string& path, const RunReport& report) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) fail("run report: cannot open " + path + " for writing");
  const std::string json = report.to_json_string();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  if (std::fclose(f) != 0) fail("run report: failed writing " + path);
}

}  // namespace recode::telemetry
