#include "telemetry/metrics.h"

#include <algorithm>

#include "telemetry/json_writer.h"

namespace recode::telemetry {

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
#if RECODE_TELEMETRY_ENABLED
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c > 0) s.buckets.push_back({bucket_upper(i), c});
  }
#endif
  return s;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [1, count]: the observation at position ceil(q * count).
  const double target = std::max(1.0, q * static_cast<double>(count));
  std::uint64_t cum = 0;
  for (const HistogramBucket& b : buckets) {
    const double prev = static_cast<double>(cum);
    cum += b.count;
    if (static_cast<double>(cum) < target) continue;
    // Fraction of the way through this bucket's occupants.
    const double frac = (target - prev) / static_cast<double>(b.count);
    const double lower = b.upper <= 1.0 ? 0.0 : b.upper / 2.0;
    double v;
    if (lower <= 0.0) {
      v = frac * b.upper;  // [0,1): linear, no log scale exists
    } else {
      // Log-linear within the bucket: lower * (upper/lower)^frac, and
      // upper/lower == 2 for every log2 bucket.
      v = lower * std::exp2(frac);
    }
    // The buckets only bound the value; the exact extremes were tracked.
    if (v < min) v = min;
    if (v > max) v = max;
    return v;
  }
  return max;  // q == 1 edge (cum ended exactly at count)
}

void Histogram::reset() {
#if RECODE_TELEMETRY_ENABLED
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
#endif
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : counters) w.kv(name, value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : gauges) w.kv(name, value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : histograms) {
    w.key(h.name);
    w.begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("min", h.min);  // null when empty (NaN convention)
    w.kv("max", h.max);
    w.kv("mean", h.mean());
    w.kv("p50", h.p50());  // null when empty (NaN convention)
    w.kv("p95", h.p95());
    w.kv("p99", h.p99());
    w.key("buckets");
    w.begin_array();
    for (const auto& b : h.buckets) {
      w.begin_object();
      w.kv("upper", b.upper);
      w.kv("count", b.count);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    auto hs = h->snapshot();
    hs.name = name;
    s.histograms.push_back(std::move(hs));
  }
  return s;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

}  // namespace recode::telemetry
