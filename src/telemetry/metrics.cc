#include "telemetry/metrics.h"

#include "telemetry/json_writer.h"

namespace recode::telemetry {

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
#if RECODE_TELEMETRY_ENABLED
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c > 0) s.buckets.push_back({bucket_upper(i), c});
  }
#endif
  return s;
}

void Histogram::reset() {
#if RECODE_TELEMETRY_ENABLED
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
#endif
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : counters) w.kv(name, value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : gauges) w.kv(name, value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : histograms) {
    w.key(h.name);
    w.begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("min", h.min);  // null when empty (NaN convention)
    w.kv("max", h.max);
    w.kv("mean", h.mean());
    w.key("buckets");
    w.begin_array();
    for (const auto& b : h.buckets) {
      w.begin_object();
      w.kv("upper", b.upper);
      w.kv("count", b.count);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    auto hs = h->snapshot();
    hs.name = name;
    s.histograms.push_back(std::move(hs));
  }
  return s;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

}  // namespace recode::telemetry
