// Data-movement ledger: per-run byte/bandwidth attribution across the
// decode chain (the run-level counterpart of the per-stage codec
// counters in pipeline.cc).
//
// Every engine feeds the same process-wide MovementLedger with typed
// byte-flow edges as data moves through the fixed hop chain
//
//   storage -> container -> huffman -> snappy -> transform -> kernel
//                                                  \-> cache -/
//
// where `storage` is the out-of-core read from the container file
// (bytes_in = the on-disk extent fetched including varint framing,
// bytes_out = the record bytes handed to the container hop; all-zero
// for fully-resident runs), `container` is the compressed-stream read
// (bytes_in includes
// the per-block codec-id dispatch byte, bytes_out is the payload handed
// to the codec chain), each codec stage records bytes in/out and
// nanoseconds (inactive stages record an equal-bytes pass-through so
// the chain stays conservation-checkable), `cache` is the decoded-band
// cache (bytes_in = pinned on insert, bytes_out = served on hit), and
// `kernel` is the SpMV accumulate (bytes_in = matrix stream consumed,
// bytes_out = result rows written; x/y vector traffic and flops are
// tracked separately).
//
// Feeding is a handful of relaxed-atomic Counter adds per *block* (never
// per nnz) on existing MetricsRegistry primitives, so the fast decode
// path stays zero-allocation; with RECODE_TELEMETRY=OFF everything here
// compiles to empty inlines and snapshots read all-zero.
//
// A "run" is a window between two snapshots: callers capture
// MovementLedger::snapshot() before and after the measured region and
// build a RunReport from the delta (BenchReport does this for every
// bench behind --json/--report). The report renders as a table, as a
// `recode-run-v1` JSON block, and answers the conservation check
// (stage-out == next-stage-in, decoded + cache-served == kernel-consumed).
#pragma once

#ifndef RECODE_TELEMETRY_ENABLED
#define RECODE_TELEMETRY_ENABLED 1
#endif

#include <cstdint>
#include <string>

#include "telemetry/metrics.h"

namespace recode::telemetry {

class JsonWriter;

// Fixed hop set, in flow order.
enum class Hop : int {
  kStorage = 0,
  kContainer = 1,
  kHuffman = 2,
  kSnappy = 3,
  kTransform = 4,
  kCache = 5,
  kKernel = 6,
};
inline constexpr int kHopCount = 7;

const char* hop_name(Hop hop);

// Plain-struct copy of the ledger counters (all zeros when telemetry is
// compiled out). Subtraction gives a run window.
struct LedgerSnapshot {
  struct Flow {
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t ns = 0;
    std::uint64_t ops = 0;  // blocks / streams / lookups through the hop
  };
  Flow hops[kHopCount];
  std::uint64_t kernel_vector_bytes = 0;  // x gathers + y read/modify/write
  std::uint64_t kernel_flops = 0;
  std::uint64_t kernel_nnz = 0;  // nnz visits (re-decodes counted again)

  const Flow& hop(Hop h) const { return hops[static_cast<int>(h)]; }

  // Flows accumulated since `earlier` (counters are monotonic).
  LedgerSnapshot since(const LedgerSnapshot& earlier) const;
};

class MovementLedger {
 public:
  // The process-wide ledger every engine reports into. Counters live in
  // MetricsRegistry::global() under "ledger.<hop>.*", so they also show
  // up in the ordinary metrics snapshot and survive registry reset()
  // semantics (references stay valid).
  static MovementLedger& global();

  struct HopFlow {
    Counter& bytes_in;
    Counter& bytes_out;
    Counter& ns;
    Counter& ops;
  };

  HopFlow& hop(Hop h) { return hops_[static_cast<int>(h)]; }

  // One call per hop traversal: bytes entering and leaving the hop.
  void flow(Hop h, std::uint64_t in, std::uint64_t out) {
    HopFlow& f = hop(h);
    f.bytes_in.add(in);
    f.bytes_out.add(out);
    f.ops.add(1);
  }

  // Inactive-stage pass-through: the bytes traverse the hop unchanged
  // (and cost no time), keeping stage-out == next-stage-in exact.
  void pass_through(Hop h, std::uint64_t bytes) { flow(h, bytes, bytes); }

  Counter& kernel_vector_bytes() { return kernel_vector_bytes_; }
  Counter& kernel_flops() { return kernel_flops_; }
  Counter& kernel_nnz() { return kernel_nnz_; }

  LedgerSnapshot snapshot() const;

 private:
  MovementLedger();

  HopFlow hops_[kHopCount];
  Counter& kernel_vector_bytes_;
  Counter& kernel_flops_;
  Counter& kernel_nnz_;
};

// One run's byte-flow graph plus wall time: renders as a table, as the
// `recode-run-v1` JSON block, and as the conservation verdict.
struct RunReport {
  std::string label;
  std::string engine;      // optional ("software" / "udp-sim" / "")
  double wall_seconds = 0.0;
  int host_cores = 0;      // 0 = unknown
  LedgerSnapshot flows;    // window delta

  // Effective bandwidth of a hop against the run's wall clock (defined
  // for every hop; the denominator every hop shares). Bytes moved is
  // bytes_out except for the kernel (bytes_in — what it consumed).
  double hop_wall_gbps(Hop h) const;

  // Bandwidth against the hop's own busy time (NaN when the hop
  // recorded no time — e.g. pass-through stages).
  double hop_busy_gbps(Hop h) const;

  // Roofline / arithmetic-intensity summary.
  double compressed_bytes_per_nnz() const;  // container reads / nnz visit
  double decoded_bytes_per_nnz() const;     // decode-stage output / nnz
  double kernel_bytes_per_nnz() const;      // matrix + vector traffic / nnz
  double arithmetic_intensity() const;      // flops / kernel byte
  // Of the matrix bytes the kernel consumed, the fraction served from
  // the decoded-band cache vs freshly decoded. Storage amplification is
  // the compressed bytes read per kernel matrix byte.
  double cache_served_fraction() const;
  double decode_served_fraction() const;
  double storage_bytes_per_kernel_byte() const;

  // Byte-conservation check over the flow graph:
  //   storage.out == container.in   (only when the storage hop saw any
  //   activity in the window — fully-resident runs record no storage
  //   flow at all),
  //   container.out == huffman.in, huffman.out == snappy.in,
  //   snappy.out == transform.in,
  //   transform.out + cache.out == kernel.in   (skipped when no kernel
  //   ran in the window, e.g. decode-only inspection runs),
  //   cache.in <= transform.out.
  // Returns false and fills `why` (when non-null) on the first violated
  // edge. Trivially true when telemetry is compiled out (all zeros).
  bool conservation_check(std::string* why = nullptr) const;

  // Appends this report as a JSON object value (schema recode-run-v1).
  void to_json(JsonWriter& w) const;
  std::string to_json_string() const;

  // Human-readable flow table (common/table): one row per hop with
  // bytes in/out, time, and effective GB/s, then the roofline summary.
  std::string render_table() const;
};

// Builds the report for the window [begin, end].
RunReport make_run_report(const std::string& label,
                          const LedgerSnapshot& begin,
                          const LedgerSnapshot& end, double wall_seconds);

// Writes `{report JSON}\n` to `path` (fails with recode::Error on I/O).
void write_run_report_file(const std::string& path, const RunReport& report);

}  // namespace recode::telemetry
