// Minimal JSON emission helper shared by the metrics snapshot, the
// Chrome-trace exporter, and the bench --json reports.
//
// Emission-only (no parsing): callers drive begin/end pairs and the
// writer handles comma placement, string escaping, and the non-finite
// double -> null convention (JSON has no NaN/Inf literals).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace recode::telemetry {

class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  // Object key; the next value (or container) attaches to it.
  void key(std::string_view k) {
    comma();
    append_string(k);
    out_ += ':';
    after_key_ = true;
  }

  void value(std::string_view s) {
    comma();
    append_string(s);
  }
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b) {
    comma();
    out_ += b ? "true" : "false";
  }
  void value(double d) {
    comma();
    if (!std::isfinite(d)) {
      out_ += "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out_ += buf;
  }
  void value(std::uint64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
  }
  void value(std::int64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
  }

  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  // Splices pre-serialized JSON in value position (e.g. a
  // MetricsSnapshot::to_json() object inside a bench report). The caller
  // vouches that `json` is a complete, valid JSON value.
  void raw(std::string_view json) {
    comma();
    out_ += json;
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void open(char c) {
    comma();
    out_ += c;
    need_comma_.push_back(false);
  }

  void close(char c) {
    out_ += c;
    need_comma_.pop_back();
  }

  // Inserts the separator before a value/key in the current container.
  void comma() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!need_comma_.empty()) {
      if (need_comma_.back()) out_ += ',';
      need_comma_.back() = true;
    }
  }

  void append_string(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> need_comma_;
  bool after_key_ = false;
};

}  // namespace recode::telemetry
