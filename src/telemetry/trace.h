// Scoped-span tracing with Chrome trace_event export.
//
// A Span (or the RECODE_TRACE_SPAN macro) records one complete event —
// category, name, start, duration, thread — into a per-thread buffer
// owned by the process-wide Tracer. Buffers are merged on export into
// Chrome's trace_event JSON array format, loadable in chrome://tracing
// or Perfetto (ui.perfetto.dev).
//
// Cost model: recording is off until Tracer::start(); a span on a
// stopped tracer is one relaxed atomic load. With RECODE_TELEMETRY=OFF
// the Span type is empty and the macros compile away entirely.
//
// Export is meant for quiesced pipelines (workers joined); per-buffer
// locks make a mid-flight export safe, just not necessarily complete.
#pragma once

#ifndef RECODE_TELEMETRY_ENABLED
#define RECODE_TELEMETRY_ENABLED 1
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace recode::telemetry {

struct TraceEvent {
  const char* cat = "";   // static string (category filter in the viewer)
  const char* name = "";  // static string
  char ph = 'X';          // "X" complete span or "C" counter sample
  std::uint64_t ts_ns = 0;   // start, relative to the tracer epoch
  std::uint64_t dur_ns = 0;
  const char* arg_name = nullptr;  // optional single integer argument;
                                   // for ph == 'C' this is the counter
                                   // series and arg_value the sample
  std::uint64_t arg_value = 0;
};

class Tracer {
 public:
  static Tracer& global();

  // Drops previously recorded events, restarts the epoch, and enables
  // recording.
  void start();
  void stop();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Labels the calling thread in the exported trace ("decode-0"). Cheap
  // to call repeatedly; the last name wins.
  void set_thread_name(const std::string& name);

  // Nanoseconds since the current epoch.
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // Appends `e` to the calling thread's buffer (recording must be on).
  void record(const TraceEvent& e);

  // Records one counter-track sample ("C" event): Perfetto renders each
  // (name, series) as a value-over-time track next to the spans, so a
  // cumulative byte counter sampled per task reads as bandwidth. A call
  // on a stopped tracer is one relaxed load; names must be literals.
  void counter(const char* cat, const char* name, const char* series,
               std::uint64_t value) {
#if RECODE_TELEMETRY_ENABLED
    if (!enabled()) return;
    TraceEvent e;
    e.cat = cat;
    e.name = name;
    e.ph = 'C';
    e.ts_ns = now_ns();
    e.arg_name = series;
    e.arg_value = value;
    record(e);
#else
    static_cast<void>(cat);
    static_cast<void>(name);
    static_cast<void>(series);
    static_cast<void>(value);
#endif
  }

  std::size_t event_count() const;

  // Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}
  // with one "X" (complete) event per span plus thread_name metadata.
  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::uint32_t tid = 0;
    std::string name;
    std::vector<TraceEvent> events;
  };

  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mu_;  // guards buffers_ registration/iteration
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 1;
};

// RAII scope recording one complete trace event on destruction. Empty
// when telemetry is compiled off.
class Span {
 public:
  Span(const char* cat, const char* name)
      : Span(cat, name, nullptr, 0) {}

  Span(const char* cat, const char* name, const char* arg_name,
       std::uint64_t arg_value)
#if RECODE_TELEMETRY_ENABLED
      : active_(Tracer::global().enabled()) {
    if (active_) {
      cat_ = cat;
      name_ = name;
      arg_name_ = arg_name;
      arg_value_ = arg_value;
      start_ns_ = Tracer::global().now_ns();
    }
  }
  ~Span() {
    if (!active_) return;
    Tracer& t = Tracer::global();
    if (!t.enabled()) return;  // tracer stopped mid-span
    TraceEvent e;
    e.cat = cat_;
    e.name = name_;
    e.ts_ns = start_ns_;
    e.dur_ns = t.now_ns() - start_ns_;
    e.arg_name = arg_name_;
    e.arg_value = arg_value_;
    t.record(e);
  }
#else
  {
    static_cast<void>(cat);
    static_cast<void>(name);
    static_cast<void>(arg_name);
    static_cast<void>(arg_value);
  }
  ~Span() = default;
#endif

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

#if RECODE_TELEMETRY_ENABLED
 private:
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_value_ = 0;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
#endif
};

#define RECODE_TELEMETRY_CAT2_(a, b) a##b
#define RECODE_TELEMETRY_CAT_(a, b) RECODE_TELEMETRY_CAT2_(a, b)

// Scoped span covering the rest of the enclosing block. Category and
// name must be string literals (stored by pointer, not copied).
#define RECODE_TRACE_SPAN(category, name)                           \
  [[maybe_unused]] ::recode::telemetry::Span RECODE_TELEMETRY_CAT_( \
      recode_trace_span_, __LINE__) {                               \
    (category), (name)                                              \
  }

// Same, with one integer argument shown in the viewer's detail pane.
#define RECODE_TRACE_SPAN_ARG(category, name, arg_key, arg_value)   \
  [[maybe_unused]] ::recode::telemetry::Span RECODE_TELEMETRY_CAT_( \
      recode_trace_span_, __LINE__) {                               \
    (category), (name), (arg_key),                                  \
        static_cast<std::uint64_t>(arg_value)                       \
  }

}  // namespace recode::telemetry
