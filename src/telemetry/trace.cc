#include "telemetry/trace.h"

#include <fstream>

#include "common/error.h"
#include "telemetry/json_writer.h"

namespace recode::telemetry {

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never dies: threads may outlive main
  return *tracer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // One buffer per (thread, tracer-lifetime); owned by the tracer so a
  // worker exiting between start() and export never invalidates events.
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    buffer = owned.get();
    std::lock_guard<std::mutex> lock(mu_);
    buffer->tid = next_tid_++;
    buffers_.push_back(std::move(owned));
  }
  return *buffer;
}

void Tracer::start() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->events.clear();
  }
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_release); }

void Tracer::set_thread_name(const std::string& name) {
  ThreadBuffer& b = local_buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  b.name = name;
}

void Tracer::record(const TraceEvent& e) {
  ThreadBuffer& b = local_buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  b.events.push_back(e);
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mu);
    n += b->events.size();
  }
  return n;
}

std::string Tracer::chrome_trace_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", std::uint64_t{1});
  w.kv("tid", std::uint64_t{0});
  w.key("args");
  w.begin_object();
  w.kv("name", "recode");
  w.end_object();
  w.end_object();

  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mu);
    if (!b->name.empty()) {
      w.begin_object();
      w.kv("name", "thread_name");
      w.kv("ph", "M");
      w.kv("pid", std::uint64_t{1});
      w.kv("tid", std::uint64_t{b->tid});
      w.key("args");
      w.begin_object();
      w.kv("name", b->name);
      w.end_object();
      w.end_object();
    }
    for (const auto& e : b->events) {
      w.begin_object();
      w.kv("name", e.name);
      w.kv("cat", e.cat);
      const char ph_str[2] = {e.ph, '\0'};
      w.kv("ph", ph_str);
      w.kv("pid", std::uint64_t{1});
      w.kv("tid", std::uint64_t{b->tid});
      // trace_event timestamps are microseconds.
      w.kv("ts", static_cast<double>(e.ts_ns) / 1e3);
      if (e.ph == 'X') w.kv("dur", static_cast<double>(e.dur_ns) / 1e3);
      if (e.arg_name != nullptr) {
        w.key("args");
        w.begin_object();
        w.kv(e.arg_name, e.arg_value);
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.take();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("tracer: cannot open " + path + " for writing");
  const std::string json = chrome_trace_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) fail("tracer: failed writing " + path);
}

}  // namespace recode::telemetry
