// Umbrella header for the telemetry subsystem: the process-wide
// MetricsRegistry (counters / gauges / log2 histograms) and the
// scoped-span Tracer with Chrome trace_event export.
//
// Build knob: the RECODE_TELEMETRY CMake option (default ON) defines
// RECODE_TELEMETRY_ENABLED=0/1 on every target linking recode_telemetry.
// When OFF, all hot-path operations compile to empty inline bodies and
// the span macros expand to nothing measurable — pipeline results are
// bitwise-identical either way (tests/telemetry/test_telemetry_pipeline).
#pragma once

#include "telemetry/ledger.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
