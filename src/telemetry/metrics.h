// Process-wide metrics: counters, gauges, and log2-bucketed histograms,
// registered by name in a MetricsRegistry and snapshotable to plain
// structs / JSON (the bench --json output and the observability story of
// README "Observability").
//
// Hot-path contract: Counter::add, Gauge::set and Histogram::observe are
// a handful of relaxed atomic operations with no locks; with
// RECODE_TELEMETRY=OFF they compile to empty inline bodies (zero
// overhead, verified by the telemetry-off CI build). Registration
// (MetricsRegistry::counter/gauge/histogram) takes a mutex and is meant
// for setup paths — resolve the reference once and keep it; references
// stay valid for the registry's lifetime, including across reset().
#pragma once

#ifndef RECODE_TELEMETRY_ENABLED
#define RECODE_TELEMETRY_ENABLED 1
#endif

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace recode::telemetry {

inline constexpr bool kEnabled = RECODE_TELEMETRY_ENABLED != 0;

// Monotonic event/byte counter. add() is one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
#if RECODE_TELEMETRY_ENABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    static_cast<void>(n);
#endif
  }

  std::uint64_t value() const {
#if RECODE_TELEMETRY_ENABLED
    return value_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

  void reset() {
#if RECODE_TELEMETRY_ENABLED
    value_.store(0, std::memory_order_relaxed);
#endif
  }

#if RECODE_TELEMETRY_ENABLED
 private:
  std::atomic<std::uint64_t> value_{0};
#endif
};

// Last-value gauge (utilization ratios, derived model outputs).
class Gauge {
 public:
  void set(double v) {
#if RECODE_TELEMETRY_ENABLED
    value_.store(v, std::memory_order_relaxed);
#else
    static_cast<void>(v);
#endif
  }

  double value() const {
#if RECODE_TELEMETRY_ENABLED
    return value_.load(std::memory_order_relaxed);
#else
    return 0.0;
#endif
  }

  void reset() {
#if RECODE_TELEMETRY_ENABLED
    value_.store(0.0, std::memory_order_relaxed);
#endif
  }

#if RECODE_TELEMETRY_ENABLED
 private:
  std::atomic<double> value_{0.0};
#endif
};

struct HistogramBucket {
  double upper = 0.0;  // exclusive upper bound of the bucket's range
  std::uint64_t count = 0;
};

// count/sum/min/max plus the non-empty log2 buckets, ascending by bound.
// min/max are NaN when count == 0 (the stats.h empty-input convention).
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::quiet_NaN();
  double max = std::numeric_limits<double>::quiet_NaN();
  std::vector<HistogramBucket> buckets;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  // Quantile estimate from the log2 buckets: finds the bucket holding
  // the rank-q observation and interpolates log-linearly inside it
  // (geometric within [2^(i-1), 2^i), linear within the [0,1) bucket),
  // then clamps to the observed min/max. NaN when empty.
  double quantile(double q) const;

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
};

// Log2-bucketed histogram over non-negative values (wait times in
// microseconds, queue depths, job cycles). Bucket 0 counts values < 1;
// bucket i >= 1 counts [2^(i-1), 2^i). observe() is a few relaxed
// atomics (bucket add, count, sum, CAS min/max) — no locks.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(double v) {
#if RECODE_TELEMETRY_ENABLED
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
#else
    static_cast<void>(v);
#endif
  }

  std::uint64_t count() const {
#if RECODE_TELEMETRY_ENABLED
    return count_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

  // Bucket index for a value (exposed for the bucket-boundary tests).
  static int bucket_index(double v) {
    if (!(v >= 1.0)) return 0;  // also catches negatives and NaN
    if (v >= 9.223372036854775808e18) return kBuckets - 1;  // 2^63
    const auto n = static_cast<std::uint64_t>(v);
    const int idx = std::bit_width(n);  // floor(log2(n)) + 1
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  // Exclusive upper bound of bucket i (2^i; bucket 0 is [0, 1)).
  static double bucket_upper(int i) {
    return i <= 0 ? 1.0 : std::ldexp(1.0, i);
  }

  HistogramSnapshot snapshot() const;
  void reset();

#if RECODE_TELEMETRY_ENABLED
 private:
  void update_min(double v) {
    double cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(double v) {
    double cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
#endif
};

// Point-in-time copy of every registered instrument, ready for JSON.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  //  max,mean,buckets:[{upper,count},...]}}}
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  // The process-wide registry every instrumented module reports into.
  static MetricsRegistry& global();

  // Returns the instrument registered under `name`, creating it on first
  // use. References remain valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  // Zeroes every instrument in place (references stay valid). For tests
  // and for benches that scope their --json output to a phase.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// RAII wait-time probe: observes the scope's elapsed microseconds into a
// histogram and optionally accumulates seconds into a caller total.
// Empty (no clock reads) when telemetry is compiled off.
class WaitTimer {
 public:
  explicit WaitTimer(Histogram& h, double* seconds_accum = nullptr)
#if RECODE_TELEMETRY_ENABLED
      : hist_(&h), accum_(seconds_accum) {
  }
  ~WaitTimer() {
    const double s = timer_.seconds();
    hist_->observe(s * 1e6);
    if (accum_ != nullptr) *accum_ += s;
  }
#else
  {
    static_cast<void>(h);
    static_cast<void>(seconds_accum);
  }
  ~WaitTimer() = default;
#endif

  WaitTimer(const WaitTimer&) = delete;
  WaitTimer& operator=(const WaitTimer&) = delete;

#if RECODE_TELEMETRY_ENABLED
 private:
  Timer timer_;
  Histogram* hist_;
  double* accum_;
#endif
};

// RAII stage probe: adds the scope's elapsed nanoseconds to a counter
// (per-codec-stage time attribution). Empty when telemetry is off.
class StageTimer {
 public:
  explicit StageTimer(Counter& ns_counter)
#if RECODE_TELEMETRY_ENABLED
      : counter_(&ns_counter) {
  }
  ~StageTimer() {
    counter_->add(static_cast<std::uint64_t>(timer_.seconds() * 1e9));
  }
#else
  {
    static_cast<void>(ns_counter);
  }
  ~StageTimer() = default;
#endif

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

#if RECODE_TELEMETRY_ENABLED
 private:
  Timer timer_;
  Counter* counter_;
#endif
};

}  // namespace recode::telemetry
