#include "udpprog/transpose_prog.h"

#include "udpprog/delta_prog.h"

namespace recode::udpprog {

using namespace udp;         // NOLINT: program builders read better unqualified
using udp::Operand;

udp::Program build_transpose_decode_program() {
  Program p;

  // Registers: R1 count, R2 plane counter, R3 inner counter, R4 byte,
  // R5 out, R6 plane's first output address, R7 saved base, R8 cursor.
  constexpr int kR1 = kDeltaCountReg;
  constexpr int kR2 = 2;
  constexpr int kR3 = 3;
  constexpr int kR4 = 4;
  constexpr int kR5 = kDeltaOutReg;
  constexpr int kR6 = 6;
  constexpr int kR7 = 7;
  constexpr int kR8 = 8;

  DispatchSpec direct;
  direct.kind = DispatchKind::kDirect;
  const StateId init = p.add_state("init", direct);
  const StateId fin = p.add_state("fin", direct);

  DispatchSpec outer_spec;
  outer_spec.kind = DispatchKind::kRegisterBool;
  outer_spec.reg = kR2;
  const StateId outer = p.add_state("outer", outer_spec);

  DispatchSpec inner_spec;
  inner_spec.kind = DispatchKind::kRegisterBool;
  inner_spec.reg = kR3;
  const StateId inner = p.add_state("inner", inner_spec);

  DispatchSpec halt_spec;
  halt_spec.kind = DispatchKind::kHalt;
  const StateId halt = p.add_state("halt", halt_spec);

  // init: save the base, arm the 8-plane outer loop.
  p.add_arc(init, 0,
            {
                act::move(kR7, kR5),
                act::set_imm(kR2, 8),
                act::move(kR6, kR5),
            },
            outer);

  // outer: planes exhausted -> fin; else rewind the cursor to this
  // plane's first record byte and run the inner scatter.
  p.add_arc(outer, 0, {}, fin);
  p.add_arc(outer, 1,
            {
                act::move(kR3, kR1),
                act::move(kR8, kR6),
            },
            inner);

  // inner: scatter one plane byte per iteration with a stride-8 store.
  p.add_arc(inner, 0,
            {
                act::add(kR6, kR6, Operand::immediate(1)),
                act::sub(kR2, kR2, Operand::immediate(1)),
            },
            outer);
  p.add_arc(inner, 1,
            {
                act::stream_read_le(kR4, 1),
                act::store_le(kR4, kR8, 0, 1),
                act::add(kR8, kR8, Operand::immediate(8)),
                act::sub(kR3, kR3, Operand::immediate(1)),
            },
            inner);

  // fin: report the output length (8 * count past the base).
  p.add_arc(fin, 0,
            {
                act::shl(kR4, kR1, Operand::immediate(3)),
                act::add(kR5, kR7, Operand::r(kR4)),
            },
            halt);

  p.set_entry(init);
  p.validate();
  return p;
}

}  // namespace recode::udpprog
