// Inverse byte-transposition (codec::byte_untranspose) as a UDP program.
//
// The encoder's byte-transpose stores a value block plane-major: all
// byte-0s of the 8-byte records, then all byte-1s, ... The inverse reads
// the stream sequentially — plane after plane, exactly the streaming
// access the UDP wants — and scatters each byte to record-major order in
// the scratchpad: plane j's r-th byte lands at out_base + r*8 + j.
//
// Register convention (shared with the delta programs):
//   R1 (in)  record count n (input must be exactly 8*n bytes)
//   R5 (in)  scratchpad output base; (out) one past the last byte written
//
// Structure: two nested loops. `outer` counts the 8 planes, `inner`
// scatters one plane's n bytes with a stride-8 store; both are
// register-bool dispatches, so the lane never executes a comparison.
#pragma once

#include "udp/program.h"

namespace recode::udpprog {

udp::Program build_transpose_decode_program();

}  // namespace recode::udpprog
