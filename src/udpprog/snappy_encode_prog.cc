#include "udpprog/snappy_encode_prog.h"

namespace recode::udpprog {

using namespace udp;  // NOLINT: program builders read better unqualified

namespace {

DispatchSpec direct() { return DispatchSpec{}; }

DispatchSpec halt_spec() {
  DispatchSpec d;
  d.kind = DispatchKind::kHalt;
  return d;
}

DispatchSpec reg_bool(int reg) {
  DispatchSpec d;
  d.kind = DispatchKind::kRegisterBool;
  d.reg = reg;
  return d;
}

// Dispatch on a register's sign bit (two's complement compare result).
DispatchSpec sign_of(int reg) {
  DispatchSpec d;
  d.kind = DispatchKind::kRegister;
  d.reg = reg;
  d.shift = 63;
  d.mask = 1;
  return d;
}

}  // namespace

udp::Program build_snappy_encode_program() {
  Program p;

  // Registers: R1 n, R2 pos, R3 literal start, R4 current 4-byte window,
  // R5 out cursor, R6 hash slot, R7 candidate, R8/R9/R12/R14 tmps,
  // R10 match length, R11 offset, R13 literal-continuation selector,
  // R15 zero (staging base).
  constexpr int kN = kSnappyEncCountReg;
  constexpr int kPos = 2, kLit = 3, kCur = 4, kOut = kSnappyEncOutReg,
                kHash = 6, kCand = 7, kT1 = 8, kT2 = 9, kLen = 10,
                kOff = 11, kT3 = 12, kRet = 13, kT4 = 14, kZero = 15;

  const StateId init = p.add_state("init", direct());
  const StateId vloop = p.add_state("vloop", direct());
  const StateId vtest = p.add_state("vtest", reg_bool(kT1));
  const StateId copyin = p.add_state("copyin", reg_bool(kN));
  const StateId main_check = p.add_state("main_check", direct());
  const StateId main_test = p.add_state("main_test", sign_of(kT2));
  const StateId hash = p.add_state("hash", direct());
  const StateId cand_test = p.add_state("cand_test", reg_bool(kCand));
  const StateId match_test = p.add_state("match_test", reg_bool(kT2));
  const StateId lit_check = p.add_state("lit_check", reg_bool(kT4));
  const StateId lit_ret = p.add_state("lit_ret", reg_bool(kRet));
  const StateId lit_size1 = p.add_state("lit_size1", direct());
  const StateId lit_size1t = p.add_state("lit_size1t", sign_of(kT1));
  const StateId lit_small = p.add_state("lit_small", direct());
  const StateId lit_size2 = p.add_state("lit_size2", direct());
  const StateId lit_size2t = p.add_state("lit_size2t", sign_of(kT1));
  const StateId lit_med = p.add_state("lit_med", direct());
  const StateId lit_large = p.add_state("lit_large", direct());
  const StateId extend_init = p.add_state("extend_init", direct());
  const StateId extend_check = p.add_state("extend_check", direct());
  const StateId extend_check_t =
      p.add_state("extend_check_t", reg_bool(kT2));
  const StateId extend_cmp = p.add_state("extend_cmp", direct());
  const StateId extend_cmp_t = p.add_state("extend_cmp_t", reg_bool(kT3));
  const StateId match_done = p.add_state("match_done", direct());
  const StateId emit_copy_check = p.add_state("emit_copy_check", direct());
  const StateId emit_copy_t = p.add_state("emit_copy_t", sign_of(kT1));
  const StateId emit_mid_check = p.add_state("emit_mid_check", direct());
  const StateId emit_mid_t = p.add_state("emit_mid_t", sign_of(kT1));
  const StateId emit_final = p.add_state("emit_final", direct());
  const StateId advance = p.add_state("advance", direct());
  const StateId tail_lit = p.add_state("tail_lit", direct());
  const StateId halt = p.add_state("halt", halt_spec());

  // --- preamble: out cursor, varint(n) ---
  p.add_arc(init, 0,
            {
                act::set_imm(kOut, kSnappyEncOutBase),
                act::set_imm(kZero, 0),
                act::move(kT4, kN),
            },
            vloop);
  p.add_arc(vloop, 0, {act::shr(kT1, kT4, Operand::immediate(7))}, vtest);
  p.add_arc(vtest, 1,
            {
                act::and_(kT2, kT4, Operand::immediate(0x7F)),
                act::or_(kT2, kT2, Operand::immediate(0x80)),
                act::store_le(kT2, kOut, 0, 1),
                act::add(kOut, kOut, Operand::immediate(1)),
                act::move(kT4, kT1),
            },
            vloop);
  p.add_arc(vtest, 0,
            {
                act::store_le(kT4, kOut, 0, 1),
                act::add(kOut, kOut, Operand::immediate(1)),
            },
            copyin);

  // --- stage the input block into the scratchpad ---
  p.add_arc(copyin, 0, {}, halt);  // empty input: preamble only
  p.add_arc(copyin, 1, {act::stream_copy(kZero, Operand::r(kN))},
            main_check);

  // --- main loop: does a 4-byte window fit at pos? ---
  p.add_arc(main_check, 0,
            {
                act::add(kT1, kPos, Operand::immediate(4)),
                act::sub(kT2, kT1, Operand::r(kN)),
                act::sub(kT2, kT2, Operand::immediate(1)),
            },
            main_test);
  p.add_arc(main_test, 1, {}, hash);      // pos + 4 <= n
  p.add_arc(main_test, 0, {}, tail_lit);  // flush the tail literal

  // --- hash the window, probe and update the table ---
  p.add_arc(hash, 0,
            {
                act::load_le(kCur, kPos, 0, 4),
                act::mul(kHash, kCur, Operand::immediate(0x1E35A7BDull)),
                act::and_(kHash, kHash, Operand::immediate(0xFFFFFFFFull)),
                act::shr(kHash, kHash, Operand::immediate(20)),  // 12-bit slot
                act::shl(kHash, kHash, Operand::immediate(2)),
                act::load_le(kCand, kHash, kSnappyEncHashBase, 4),
                act::add(kT1, kPos, Operand::immediate(1)),
                act::store_le(kT1, kHash, kSnappyEncHashBase, 4),
            },
            cand_test);
  p.add_arc(cand_test, 0, {}, advance);  // empty slot
  p.add_arc(cand_test, 1,
            {
                act::sub(kCand, kCand, Operand::immediate(1)),
                act::load_le(kT1, kCand, 0, 4),
                act::xor_(kT2, kT1, Operand::r(kCur)),
            },
            match_test);
  p.add_arc(match_test, 1, {}, advance);  // hash collision, no match
  p.add_arc(match_test, 0,
            {
                act::sub(kOff, kPos, Operand::r(kCand)),
                act::sub(kT4, kPos, Operand::r(kLit)),  // pending literal
                act::set_imm(kRet, 0),                  // return to extend
            },
            lit_check);

  // --- literal emission (length kT4, source kLit), shared by both the
  // --- pre-match flush and the tail flush via the kRet selector ---
  p.add_arc(lit_check, 0, {}, lit_ret);
  p.add_arc(lit_check, 1, {}, lit_size1);
  p.add_arc(lit_ret, 0, {}, extend_init);
  p.add_arc(lit_ret, 1, {}, halt);
  p.add_arc(lit_size1, 0, {act::sub(kT1, kT4, Operand::immediate(60))},
            lit_size1t);
  p.add_arc(lit_size1t, 1, {}, lit_small);  // len < 60: inline length
  p.add_arc(lit_size1t, 0, {}, lit_size2);
  p.add_arc(lit_small, 0,
            {
                act::sub(kT2, kT4, Operand::immediate(1)),
                act::shl(kT2, kT2, Operand::immediate(2)),
                act::store_le(kT2, kOut, 0, 1),
                act::add(kOut, kOut, Operand::immediate(1)),
                act::scratch_copy(kOut, kLit, Operand::r(kT4)),
                act::add(kOut, kOut, Operand::r(kT4)),
                act::move(kLit, kPos),
            },
            lit_ret);
  p.add_arc(lit_size2, 0, {act::sub(kT1, kT4, Operand::immediate(257))},
            lit_size2t);
  p.add_arc(lit_size2t, 1, {}, lit_med);  // len <= 256: 1 length byte
  p.add_arc(lit_size2t, 0, {}, lit_large);
  p.add_arc(lit_med, 0,
            {
                act::set_imm(kT2, 60u << 2),
                act::store_le(kT2, kOut, 0, 1),
                act::sub(kT2, kT4, Operand::immediate(1)),
                act::store_le(kT2, kOut, 1, 1),
                act::add(kOut, kOut, Operand::immediate(2)),
                act::scratch_copy(kOut, kLit, Operand::r(kT4)),
                act::add(kOut, kOut, Operand::r(kT4)),
                act::move(kLit, kPos),
            },
            lit_ret);
  p.add_arc(lit_large, 0,
            {
                act::set_imm(kT2, 61u << 2),
                act::store_le(kT2, kOut, 0, 1),
                act::sub(kT2, kT4, Operand::immediate(1)),
                act::store_le(kT2, kOut, 1, 2),
                act::add(kOut, kOut, Operand::immediate(3)),
                act::scratch_copy(kOut, kLit, Operand::r(kT4)),
                act::add(kOut, kOut, Operand::r(kT4)),
                act::move(kLit, kPos),
            },
            lit_ret);

  // --- match extension, byte at a time ---
  p.add_arc(extend_init, 0, {act::set_imm(kLen, 4)}, extend_check);
  p.add_arc(extend_check, 0,
            {
                act::add(kT1, kPos, Operand::r(kLen)),
                act::sub(kT2, kT1, Operand::r(kN)),
            },
            extend_check_t);
  p.add_arc(extend_check_t, 0, {}, match_done);  // reached end of input
  p.add_arc(extend_check_t, 1,
            {
                act::add(kT1, kCand, Operand::r(kLen)),
                act::load_le(kT3, kT1, 0, 1),
                act::add(kT1, kPos, Operand::r(kLen)),
                act::load_le(kT4, kT1, 0, 1),
                act::xor_(kT3, kT3, Operand::r(kT4)),
            },
            extend_cmp);
  p.add_arc(extend_cmp, 0, {}, extend_cmp_t);
  p.add_arc(extend_cmp_t, 1, {}, match_done);  // bytes differ
  p.add_arc(extend_cmp_t, 0, {act::add(kLen, kLen, Operand::immediate(1))},
            extend_check);

  // --- advance past the match, then emit copy elements ---
  p.add_arc(match_done, 0,
            {
                act::add(kPos, kPos, Operand::r(kLen)),
                act::move(kLit, kPos),
            },
            emit_copy_check);
  p.add_arc(emit_copy_check, 0,
            {act::sub(kT1, kLen, Operand::immediate(68))}, emit_copy_t);
  p.add_arc(emit_copy_t, 0,  // len >= 68: peel a 64-byte copy
            {
                act::set_imm(kT2, ((64u - 1) << 2) | 2),
                act::store_le(kT2, kOut, 0, 1),
                act::and_(kT2, kOff, Operand::immediate(0xFF)),
                act::store_le(kT2, kOut, 1, 1),
                act::shr(kT2, kOff, Operand::immediate(8)),
                act::store_le(kT2, kOut, 2, 1),
                act::add(kOut, kOut, Operand::immediate(3)),
                act::sub(kLen, kLen, Operand::immediate(64)),
            },
            emit_copy_check);
  p.add_arc(emit_copy_t, 1, {}, emit_mid_check);
  p.add_arc(emit_mid_check, 0,
            {act::sub(kT1, kLen, Operand::immediate(65))}, emit_mid_t);
  p.add_arc(emit_mid_t, 0,  // len in 65..67: peel 60 so the rest stays >= 4
            {
                act::set_imm(kT2, ((60u - 1) << 2) | 2),
                act::store_le(kT2, kOut, 0, 1),
                act::and_(kT2, kOff, Operand::immediate(0xFF)),
                act::store_le(kT2, kOut, 1, 1),
                act::shr(kT2, kOff, Operand::immediate(8)),
                act::store_le(kT2, kOut, 2, 1),
                act::add(kOut, kOut, Operand::immediate(3)),
                act::sub(kLen, kLen, Operand::immediate(60)),
            },
            emit_final);
  p.add_arc(emit_mid_t, 1, {}, emit_final);
  p.add_arc(emit_final, 0,
            {
                act::sub(kT2, kLen, Operand::immediate(1)),
                act::shl(kT2, kT2, Operand::immediate(2)),
                act::or_(kT2, kT2, Operand::immediate(2)),
                act::store_le(kT2, kOut, 0, 1),
                act::and_(kT2, kOff, Operand::immediate(0xFF)),
                act::store_le(kT2, kOut, 1, 1),
                act::shr(kT2, kOff, Operand::immediate(8)),
                act::store_le(kT2, kOut, 2, 1),
                act::add(kOut, kOut, Operand::immediate(3)),
            },
            main_check);

  p.add_arc(advance, 0, {act::add(kPos, kPos, Operand::immediate(1))},
            main_check);

  // --- tail literal, then halt via the kRet selector ---
  p.add_arc(tail_lit, 0,
            {
                act::sub(kT4, kN, Operand::r(kLit)),
                act::set_imm(kRet, 1),
            },
            lit_check);

  p.set_entry(init);
  p.validate();
  return p;
}

}  // namespace recode::udpprog
