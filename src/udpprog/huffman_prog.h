// Canonical Huffman decode as a UDP program, specialized per table.
//
// This is the showcase for multi-way dispatch: the first level consumes
// 8 stream bits and dispatches 256 ways; prefixes that fully determine a
// (length <= 8) code emit their symbol directly, rewinding the over-read
// bits; longer codes fall through to a per-prefix second-level state that
// dispatches on 7 more bits (kMaxCodeLen = 15). Each emitted symbol loops
// through a count-check state. No comparisons, no branch prediction —
// dictionary decode as table walk, which is the workload the UDP was
// built for (§III-E: "80% cycle waste" on CPUs from dispatch branches).
//
// Stream format matches codec::HuffmanCodec: varint(symbol count), then
// the MSB-first bit stream. The varint is parsed in-program.
// Register convention:
//   R5 (in)  scratchpad output base; (out) one past the last byte written
#pragma once

#include "codec/huffman.h"
#include "udp/program.h"

namespace recode::udpprog {

inline constexpr int kHuffmanOutReg = 5;

udp::Program build_huffman_decode_program(const codec::HuffmanTable& table);

}  // namespace recode::udpprog
