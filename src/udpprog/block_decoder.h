// Runs the full per-block decompression pipeline on the UDP lane
// simulator: Huffman decode -> Snappy decode -> inverse delta, as a
// series of steps in a single lane (§V-A: "run as a series of steps in a
// single lane of the UDP", intermediate buffers in the lane scratchpad).
//
// Outputs are produced entirely by the simulated programs; the software
// codecs are used only by callers to cross-validate.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "codec/arena.h"
#include "codec/pipeline.h"
#include "udp/accelerator.h"
#include "udp/effclip.h"
#include "udp/lane.h"

namespace recode::udpprog {

struct StageCycles {
  std::uint64_t huffman = 0;
  std::uint64_t snappy = 0;
  std::uint64_t delta = 0;

  std::uint64_t total() const { return huffman + snappy + delta; }
};

struct BlockResult {
  std::vector<sparse::index_t> indices;
  std::vector<double> values;
  StageCycles index_cycles;
  StageCycles value_cycles;

  // One block is decoded start-to-finish on one lane.
  std::uint64_t lane_cycles() const {
    return index_cycles.total() + value_cycles.total();
  }
};

class UdpPipelineDecoder {
 public:
  // Builds and lays out the stage programs for this matrix (the Huffman
  // programs are specialized to its trained tables).
  explicit UdpPipelineDecoder(const codec::CompressedMatrix& cm,
                              udp::LaneConfig lane_config = {});

  // Decodes block b on the simulator. Throws recode::Error if the stream
  // is malformed or the decoded sizes disagree with the blocking plan.
  BlockResult decode_block(std::size_t b);

  // Dispatch-memory packing achieved by EffCLiP across all stage programs
  // (min over layouts) — tests assert near-perfect density.
  double min_layout_density() const;

  // Total dispatch-memory slots across the stage programs (the lane's
  // program footprint).
  std::size_t total_table_slots() const;

 private:
  // Runs `layout` over `input`; copies the scratch bytes [0, R5) into the
  // given arena slot and returns a span over them (valid until the slot
  // is reused).
  codec::ByteSpan run_stage(const udp::Layout& layout, codec::ByteSpan input,
                            std::uint64_t init_count, std::uint64_t& cycles,
                            std::size_t out_slot);

  // Stage intermediates ping-pong between the arena's scratch slabs; the
  // last stage lands in out_slot. Zero heap allocations once the arena is
  // warm (the lane's own scratchpad aside — that models UDP hardware).
  // The stage flags come from the block's codec (codec/registry.h), so
  // mixed-id streams dispatch per block like the host engines.
  codec::ByteSpan decode_stream(codec::ByteSpan data, bool huffman_on,
                                bool snappy_on, codec::Transform transform,
                                const udp::Layout* huffman_layout,
                                std::size_t expect_bytes, std::size_t out_slot,
                                StageCycles& cycles);

  const codec::CompressedMatrix* cm_;
  codec::DecodeArena arena_;
  udp::Program delta_program_;
  udp::Program varint_delta_program_;
  udp::Program transpose_program_;
  udp::Program snappy_program_;
  udp::Program index_huffman_program_;
  udp::Program value_huffman_program_;
  std::unique_ptr<udp::Layout> delta_layout_;
  std::unique_ptr<udp::Layout> varint_delta_layout_;
  std::unique_ptr<udp::Layout> transpose_layout_;
  std::unique_ptr<udp::Layout> snappy_layout_;
  std::unique_ptr<udp::Layout> index_huffman_layout_;
  std::unique_ptr<udp::Layout> value_huffman_layout_;
  udp::LaneConfig lane_config_;
};

}  // namespace recode::udpprog
