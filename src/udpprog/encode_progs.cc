#include "udpprog/encode_progs.h"

namespace recode::udpprog {

using namespace udp;  // NOLINT: program builders read better unqualified

namespace {

DispatchSpec direct() { return DispatchSpec{}; }

DispatchSpec halt_spec() {
  DispatchSpec d;
  d.kind = DispatchKind::kHalt;
  return d;
}

DispatchSpec reg_bool(int reg) {
  DispatchSpec d;
  d.kind = DispatchKind::kRegisterBool;
  d.reg = reg;
  return d;
}

DispatchSpec sign_of(int reg) {
  DispatchSpec d;
  d.kind = DispatchKind::kRegister;
  d.reg = reg;
  d.shift = 63;
  d.mask = 1;
  return d;
}

DispatchSpec stream_byte() {
  DispatchSpec d;
  d.kind = DispatchKind::kStreamBits;
  d.bits = 8;
  return d;
}

}  // namespace

udp::Program build_delta_encode_program() {
  Program p;
  // R1 count, R2 prev, R3 word, R4 diff, R5 out, R6 sign mask, R7 tmp.
  constexpr int kR1 = kEncodeCountReg, kR2 = 2, kR3 = 3, kR4 = 4,
                kR5 = kEncodeOutReg, kR6 = 6;

  const StateId loop = p.add_state("loop", reg_bool(kR1));
  const StateId halt = p.add_state("halt", halt_spec());

  p.add_arc(loop, 0, {}, halt);
  // diff = word - prev (mod 2^32); zigzag = (diff << 1) ^ sext32(diff).
  p.add_arc(loop, 1,
            {
                act::stream_read_le(kR3, 4),
                act::sub(kR4, kR3, Operand::r(kR2)),
                act::move(kR2, kR3),                      // prev = word
                act::shl(kR6, kR4, Operand::immediate(32)),
                act::sar(kR6, kR6, Operand::immediate(63)),  // sign of bit 31
                act::shl(kR4, kR4, Operand::immediate(1)),
                act::xor_(kR4, kR4, Operand::r(kR6)),
                act::store_le(kR4, kR5, 0, 4),            // truncates mod 2^32
                act::add(kR5, kR5, Operand::immediate(4)),
                act::sub(kR1, kR1, Operand::immediate(1)),
            },
            loop);
  p.set_entry(loop);
  p.validate();
  return p;
}

udp::Program build_huffman_encode_program(const codec::HuffmanTable& table) {
  Program p;
  // R1 count, R3 bit accumulator, R4 live bit count, R5 out cursor,
  // R7/R8/R9 tmps, R14 varint scratch.
  constexpr int kR1 = kEncodeCountReg, kR3 = 3, kR4 = 4,
                kR5 = kEncodeOutReg, kR7 = 7, kR8 = 8, kR9 = 9, kR14 = 14;

  const StateId init = p.add_state("init", direct());
  const StateId vloop = p.add_state("vloop", direct());
  const StateId vtest = p.add_state("vtest", reg_bool(kR7));
  const StateId check = p.add_state("check", reg_bool(kR1));
  const StateId sym = p.add_state("sym", stream_byte());
  const StateId flush = p.add_state("flush", direct());
  const StateId flush_t = p.add_state("flush_t", sign_of(kR8));
  const StateId tail = p.add_state("tail", reg_bool(kR4));
  const StateId halt = p.add_state("halt", halt_spec());

  // --- out cursor + varint(symbol count), identical to the software
  // --- encoder's framing ---
  p.add_arc(init, 0,
            {
                act::set_imm(kR5, kEncodeOutBase),
                act::move(kR14, kR1),
            },
            vloop);
  p.add_arc(vloop, 0, {act::shr(kR7, kR14, Operand::immediate(7))}, vtest);
  p.add_arc(vtest, 1,
            {
                act::and_(kR8, kR14, Operand::immediate(0x7F)),
                act::or_(kR8, kR8, Operand::immediate(0x80)),
                act::store_le(kR8, kR5, 0, 1),
                act::add(kR5, kR5, Operand::immediate(1)),
                act::move(kR14, kR7),
            },
            vloop);
  p.add_arc(vtest, 0,
            {
                act::store_le(kR14, kR5, 0, 1),
                act::add(kR5, kR5, Operand::immediate(1)),
            },
            check);

  // --- per-symbol: append the canonical code, then drain whole bytes ---
  p.add_arc(check, 0, {}, tail);
  p.add_arc(check, 1, {}, sym);
  for (std::uint32_t b = 0; b < 256; ++b) {
    const auto code = table.code(static_cast<std::uint8_t>(b));
    const auto len = table.length(static_cast<std::uint8_t>(b));
    p.add_arc(sym, b,
              {
                  act::shl(kR3, kR3, Operand::immediate(len)),
                  act::or_(kR3, kR3, Operand::immediate(code)),
                  act::add(kR4, kR4, Operand::immediate(len)),
                  act::sub(kR1, kR1, Operand::immediate(1)),
              },
              flush);
  }
  p.add_arc(flush, 0, {act::sub(kR8, kR4, Operand::immediate(8))}, flush_t);
  p.add_arc(flush_t, 1, {}, check);  // fewer than 8 live bits
  p.add_arc(flush_t, 0,
            {
                act::sub(kR4, kR4, Operand::immediate(8)),
                act::shr(kR9, kR3, Operand::r(kR4)),
                act::store_le(kR9, kR5, 0, 1),
                act::add(kR5, kR5, Operand::immediate(1)),
            },
            flush);

  // --- zero-pad the final partial byte ---
  p.add_arc(tail, 0, {}, halt);
  p.add_arc(tail, 1,
            {
                act::set_imm(kR8, 8),
                act::sub(kR8, kR8, Operand::r(kR4)),
                act::shl(kR9, kR3, Operand::r(kR8)),
                act::store_le(kR9, kR5, 0, 1),
                act::add(kR5, kR5, Operand::immediate(1)),
            },
            halt);

  p.set_entry(init);
  p.validate();
  return p;
}

}  // namespace recode::udpprog
