#include "udpprog/block_decoder.h"

#include <cstring>

#include "codec/registry.h"
#include "common/error.h"
#include "telemetry/telemetry.h"
#include "udpprog/delta_prog.h"
#include "udpprog/varint_delta_prog.h"
#include "udpprog/huffman_prog.h"
#include "udpprog/snappy_prog.h"
#include "udpprog/transpose_prog.h"

namespace recode::udpprog {

UdpPipelineDecoder::UdpPipelineDecoder(const codec::CompressedMatrix& cm,
                                       udp::LaneConfig lane_config)
    : cm_(&cm) {
  // The lane loads one program per stage actually present in the
  // matrix's per-block codecs. Validating every id up front routes
  // hostile containers through the same registry gate (and the same
  // recode::Error messages) as the host decode engines.
  bool uses_delta = false, uses_varint = false, uses_transpose = false;
  bool uses_snappy = false, uses_huffman = false;
  for (std::size_t b = 0; b < cm.blocks.size(); ++b) {
    const codec::BlockCodec bc = codec::block_codec_checked(cm, b);
    for (const codec::Transform t : {bc.index_transform, bc.value_transform}) {
      uses_delta |= t == codec::Transform::kDelta32;
      uses_varint |= t == codec::Transform::kVarintDelta;
      uses_transpose |= t == codec::Transform::kByteTranspose;
    }
    uses_snappy |= bc.snappy;
    uses_huffman |= bc.huffman;
  }
  if (uses_delta) {
    delta_program_ = build_delta_decode_program();
    delta_layout_ = std::make_unique<udp::Layout>(delta_program_);
  }
  if (uses_varint) {
    varint_delta_program_ = build_varint_delta_decode_program();
    varint_delta_layout_ = std::make_unique<udp::Layout>(varint_delta_program_);
  }
  if (uses_transpose) {
    transpose_program_ = build_transpose_decode_program();
    transpose_layout_ = std::make_unique<udp::Layout>(transpose_program_);
  }
  if (uses_snappy) {
    snappy_program_ = build_snappy_decode_program();
    snappy_layout_ = std::make_unique<udp::Layout>(snappy_program_);
  }
  if (uses_huffman) {
    // block_codec_checked already proved the tables exist.
    index_huffman_program_ = build_huffman_decode_program(*cm.index_table);
    index_huffman_layout_ =
        std::make_unique<udp::Layout>(index_huffman_program_);
    value_huffman_program_ = build_huffman_decode_program(*cm.value_table);
    value_huffman_layout_ =
        std::make_unique<udp::Layout>(value_huffman_program_);
  }
  lane_config_ = lane_config;
  // The default 64 KB scratchpad is the real lane's budget and fits the
  // paper's 8 KB blocks with room for stage buffers. Block-size ablations
  // beyond that model a hypothetically larger scratchpad: size it so the
  // largest stage output (a possibly-incompressible value block plus
  // codec framing) always fits.
  RECODE_PARSE_CHECK(cm.config.nnz_per_block <= (1u << 24),
                     "udp decoder: block size too large");
  const std::size_t value_block_bytes = cm.config.nnz_per_block * 8;
  lane_config_.scratchpad_bytes =
      std::max(lane_config_.scratchpad_bytes,
               value_block_bytes * 2 + 4096);
}

codec::ByteSpan UdpPipelineDecoder::run_stage(const udp::Layout& layout,
                                              codec::ByteSpan input,
                                              std::uint64_t init_count,
                                              std::uint64_t& cycles,
                                              std::size_t out_slot) {
  udp::Lane lane(layout, lane_config_);
  std::vector<std::pair<int, std::uint64_t>> init;
  // All programs share the conventions: R5 = output base (0), and the
  // delta program additionally takes the word count in R1; R9 mirrors the
  // output base for the snappy program.
  init.emplace_back(kDeltaOutReg, 0);
  init.emplace_back(kSnappyBaseReg, 0);
  if (init_count != 0) init.emplace_back(kDeltaCountReg, init_count);

  const auto& counters = lane.run(input, init);
  cycles += counters.cycles;
  const std::uint64_t out_len = lane.reg(kDeltaOutReg);
  if (out_len > lane.scratch().size()) fail("udp stage: output overrun");
  std::uint8_t* dst =
      arena_.slab(out_slot, static_cast<std::size_t>(out_len));
  std::memcpy(dst, lane.scratch().data(), static_cast<std::size_t>(out_len));
  return codec::ByteSpan(dst, static_cast<std::size_t>(out_len));
}

codec::ByteSpan UdpPipelineDecoder::decode_stream(
    codec::ByteSpan data, bool huffman_on, bool snappy_on,
    codec::Transform transform, const udp::Layout* huffman_layout,
    std::size_t expect_bytes, std::size_t out_slot, StageCycles& cycles) {
  const bool transform_on = transform != codec::Transform::kNone;
  // The ledger sees the lane simulation's stage edges exactly as the host
  // engines': bytes through each hop, wall time of the simulated stage.
  telemetry::MovementLedger& ledger = telemetry::MovementLedger::global();
  codec::ByteSpan buf = data;
  if (huffman_on) {
    RECODE_CHECK(huffman_layout != nullptr);
    const std::size_t stage_in = buf.size();
    telemetry::StageTimer lt(ledger.hop(telemetry::Hop::kHuffman).ns);
    buf = run_stage(*huffman_layout, buf, 0, cycles.huffman,
                    (snappy_on || transform_on) ? codec::DecodeArena::kScratchA
                                                : out_slot);
    ledger.flow(telemetry::Hop::kHuffman, stage_in, buf.size());
  } else {
    ledger.pass_through(telemetry::Hop::kHuffman, buf.size());
  }
  if (snappy_on) {
    const std::size_t stage_in = buf.size();
    telemetry::StageTimer lt(ledger.hop(telemetry::Hop::kSnappy).ns);
    buf = run_stage(*snappy_layout_, buf, 0, cycles.snappy,
                    transform_on ? (huffman_on
                                        ? codec::DecodeArena::kScratchB
                                        : codec::DecodeArena::kScratchA)
                                 : out_slot);
    ledger.flow(telemetry::Hop::kSnappy, stage_in, buf.size());
  } else {
    ledger.pass_through(telemetry::Hop::kSnappy, buf.size());
  }
  const std::size_t transform_in = buf.size();
  {
    telemetry::StageTimer lt(ledger.hop(telemetry::Hop::kTransform).ns);
    if (transform == codec::Transform::kDelta32) {
      if (buf.size() % 4 != 0) fail("udp stage: delta input misaligned");
      buf = run_stage(*delta_layout_, buf, buf.size() / 4, cycles.delta,
                      out_slot);
    } else if (transform == codec::Transform::kVarintDelta) {
      // The word count comes from the blocking plan, not the byte stream.
      buf = run_stage(*varint_delta_layout_, buf, expect_bytes / 4,
                      cycles.delta, out_slot);
    } else if (transform == codec::Transform::kByteTranspose) {
      if (buf.size() % 8 != 0) fail("udp stage: transpose input misaligned");
      buf = run_stage(*transpose_layout_, buf, buf.size() / 8, cycles.delta,
                      out_slot);
    }
  }
  ledger.flow(telemetry::Hop::kTransform, transform_in, buf.size());
  if (buf.size() != expect_bytes) {
    fail("udp stage: decoded size mismatch (got " +
         std::to_string(buf.size()) + ", want " +
         std::to_string(expect_bytes) + ")");
  }
  return buf;
}

BlockResult UdpPipelineDecoder::decode_block(std::size_t b) {
  RECODE_CHECK(b < cm_->blocks.size());
  const codec::BlockCodec bc = codec::block_codec_checked(*cm_, b);
  const auto& block = cm_->blocks[b];
  const std::size_t count = cm_->blocking.blocks[b].count;
  telemetry::MovementLedger::global().flow(telemetry::Hop::kContainer,
                                           block.bytes() + 1, block.bytes());

  BlockResult result;
  const codec::ByteSpan idx_bytes = decode_stream(
      block.index_data, bc.huffman, bc.snappy, bc.index_transform,
      index_huffman_layout_.get(), count * sizeof(sparse::index_t),
      codec::DecodeArena::kIndexOut, result.index_cycles);
  const codec::ByteSpan val_bytes = decode_stream(
      block.value_data, bc.huffman, bc.snappy, bc.value_transform,
      value_huffman_layout_.get(), count * sizeof(double),
      codec::DecodeArena::kValueOut, result.value_cycles);

  result.indices.resize(count);
  result.values.resize(count);
  std::memcpy(result.indices.data(), idx_bytes.data(), idx_bytes.size());
  std::memcpy(result.values.data(), val_bytes.data(), val_bytes.size());
  return result;
}

double UdpPipelineDecoder::min_layout_density() const {
  double density = 1.0;
  for (const udp::Layout* l :
       {delta_layout_.get(), varint_delta_layout_.get(),
        transpose_layout_.get(), snappy_layout_.get(),
        index_huffman_layout_.get(), value_huffman_layout_.get()}) {
    if (l != nullptr) density = std::min(density, l->density());
  }
  return density;
}

std::size_t UdpPipelineDecoder::total_table_slots() const {
  std::size_t slots = 0;
  for (const udp::Layout* l :
       {delta_layout_.get(), varint_delta_layout_.get(),
        transpose_layout_.get(), snappy_layout_.get(),
        index_huffman_layout_.get(), value_huffman_layout_.get()}) {
    if (l != nullptr) slots += l->table_size();
  }
  return slots;
}

}  // namespace recode::udpprog
