#include "udpprog/matrix_decoder.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/prng.h"
#include "udpprog/block_decoder.h"

namespace recode::udpprog {

MatrixDecodeResult simulate_matrix_decode(const codec::CompressedMatrix& cm,
                                          const sparse::Csr* reference,
                                          const MatrixDecodeOptions& options) {
  MatrixDecodeResult result;
  result.total_blocks = cm.blocks.size();
  if (cm.blocks.empty()) return result;

  // Deterministic block sample: evenly strided with a seeded phase, so
  // both small and large block indices are covered.
  std::vector<std::size_t> sample;
  const std::size_t want =
      options.max_sampled_blocks == 0
          ? cm.blocks.size()
          : std::min(options.max_sampled_blocks, cm.blocks.size());
  {
    Prng prng(options.sample_seed);
    const double stride =
        static_cast<double>(cm.blocks.size()) / static_cast<double>(want);
    const double phase = prng.next_double() * stride;
    for (std::size_t i = 0; i < want; ++i) {
      const auto b = static_cast<std::size_t>(
          phase + stride * static_cast<double>(i));
      sample.push_back(std::min(b, cm.blocks.size() - 1));
    }
    sample.erase(std::unique(sample.begin(), sample.end()), sample.end());
  }

  UdpPipelineDecoder decoder(cm, options.accelerator.lane);
  std::uint64_t sampled_cycles = 0;
  std::uint64_t huffman_cycles = 0, snappy_cycles = 0, delta_cycles = 0;
  std::size_t sampled_nnz = 0;

  for (const std::size_t b : sample) {
    const BlockResult block = decoder.decode_block(b);
    sampled_cycles += block.lane_cycles();
    huffman_cycles += block.index_cycles.huffman + block.value_cycles.huffman;
    snappy_cycles += block.index_cycles.snappy + block.value_cycles.snappy;
    delta_cycles += block.index_cycles.delta + block.value_cycles.delta;
    sampled_nnz += block.indices.size();

    if (options.validate && reference != nullptr) {
      const auto& range = cm.blocking.blocks[b];
      for (std::size_t i = 0; i < range.count; ++i) {
        if (block.indices[i] != reference->col_idx[range.first_nnz + i] ||
            block.values[i] != reference->val[range.first_nnz + i]) {
          fail("udp matrix decode: block " + std::to_string(b) +
               " disagrees with reference at element " + std::to_string(i));
        }
      }
    }
  }

  result.simulated_blocks = sample.size();
  result.validated = options.validate && reference != nullptr;

  const double n = static_cast<double>(sample.size());
  const double mean_cycles = static_cast<double>(sampled_cycles) / n;
  result.mean_huffman_cycles = static_cast<double>(huffman_cycles) / n;
  result.mean_snappy_cycles = static_cast<double>(snappy_cycles) / n;
  result.mean_delta_cycles = static_cast<double>(delta_cycles) / n;
  result.mean_block_micros =
      mean_cycles / options.accelerator.clock_hz * 1e6;

  // Schedule the full matrix: sampled blocks with measured cycles, the
  // rest at the sample mean.
  udp::Accelerator accel(options.accelerator);
  for (std::size_t b = 0; b < cm.blocks.size(); ++b) {
    accel.add_job(static_cast<std::uint64_t>(mean_cycles));
  }
  accel.publish_telemetry();
  result.accelerator_seconds = accel.seconds();
  result.energy_joules = accel.energy_joules();

  // Throughput counts decompressed (output) bytes, matching the paper's
  // decompression-rate metric.
  const std::uint64_t out_bytes = static_cast<std::uint64_t>(cm.nnz()) * 12;
  result.throughput_bytes_per_sec =
      result.accelerator_seconds == 0.0
          ? 0.0
          : static_cast<double>(out_bytes) / result.accelerator_seconds;
  return result;
}

}  // namespace recode::udpprog
