// Forward (compression-side) UDP programs: delta encode and Huffman
// encode. Together with snappy_encode_prog.h these close the loop — the
// whole Delta-Snappy-Huffman pipeline runs on the simulated accelerator
// in both directions, which is what "programmable recoding engine" means
// (§III-D: new representations are software for the UDP, invisible to
// the CPU).
//
// Register conventions (shared with the decode programs):
//   R1 (in)  element count (words for delta, bytes for huffman)
//   R5 (out) one past the last output byte
// Delta encode writes at scratch offset 0; Huffman encode writes at
// kEncodeOutBase so the (potentially expanding) bitstream cannot collide
// with anything staged below it.
#pragma once

#include "codec/huffman.h"
#include "udp/program.h"

namespace recode::udpprog {

inline constexpr int kEncodeCountReg = 1;
inline constexpr int kEncodeOutReg = 5;
inline constexpr std::uint64_t kEncodeOutBase = 32 * 1024;

// Zigzag first-difference over LE32 words (inverse of delta_prog).
// Input: raw words on the stream. Output: encoded words at offset 0.
udp::Program build_delta_encode_program();

// Canonical-Huffman bit packing with the table baked into the dispatch
// arcs (inverse of huffman_prog). Input: raw bytes on the stream.
// Output at kEncodeOutBase: varint(count) + MSB-first bitstream —
// byte-identical to codec::HuffmanCodec::encode.
udp::Program build_huffman_encode_program(const codec::HuffmanTable& table);

}  // namespace recode::udpprog
