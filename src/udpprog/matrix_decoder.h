// Matrix-level UDP decompression simulation.
//
// Drives UdpPipelineDecoder over a compressed matrix's blocks, schedules
// the per-block lane cycles on the 64-lane Accelerator model, and reports
// the throughput/latency numbers the paper's Figs 12/13 plot. For large
// matrices a deterministic sample of blocks is simulated and the
// remainder is extrapolated from the sample mean (the same methodology
// the paper uses for Huffman training, §IV-B).
#pragma once

#include <cstdint>
#include <optional>

#include "codec/pipeline.h"
#include "udp/accelerator.h"

namespace recode::udpprog {

struct MatrixDecodeOptions {
  udp::AcceleratorConfig accelerator;
  // Max blocks to run through the cycle simulator; the rest extrapolate
  // from the sampled mean. 0 = simulate every block.
  std::size_t max_sampled_blocks = 64;
  std::uint64_t sample_seed = 7;
  // Cross-check every simulated block against the software codecs.
  bool validate = true;
};

struct MatrixDecodeResult {
  std::size_t total_blocks = 0;
  std::size_t simulated_blocks = 0;
  bool validated = false;

  // Mean one-lane latency to fully decode one block (the paper reports a
  // geomean of ~21.7 us per 8 KB block).
  double mean_block_micros = 0.0;

  // Accelerator completion time for the whole matrix (extrapolated when
  // sampled) and the resulting decompressed-data throughput.
  double accelerator_seconds = 0.0;
  double throughput_bytes_per_sec = 0.0;

  // Energy spent by the accelerator for the whole matrix.
  double energy_joules = 0.0;

  // Mean cycles per block, split by pipeline stage (for ablations).
  double mean_huffman_cycles = 0.0;
  double mean_snappy_cycles = 0.0;
  double mean_delta_cycles = 0.0;
};

// Simulates decompressing `cm` on the UDP. When `reference` is non-null
// and options.validate is set, every simulated block's output is compared
// against the reference CSR streams; a mismatch throws recode::Error.
MatrixDecodeResult simulate_matrix_decode(
    const codec::CompressedMatrix& cm, const sparse::Csr* reference,
    const MatrixDecodeOptions& options = {});

}  // namespace recode::udpprog
