// Inverse-delta (prefix sum of zigzag deltas) as a UDP program.
//
// Mirrors codec::DeltaCodec::decode over 32-bit little-endian words.
// Register convention:
//   R1 (in)  word count
//   R5 (in)  scratchpad output base; (out) one past the last byte written
// Input stream: the delta-encoded bytes. Output: decoded LE32 words at the
// output base.
//
// Structure: a two-state loop. `loop` tests the remaining count; `sign`
// multi-way dispatches on the zigzag parity bit so the even/odd arcs do
// the add/complement without any comparison — branch-free in exactly the
// way the UDP's dispatch makes cheap.
#pragma once

#include "udp/program.h"

namespace recode::udpprog {

inline constexpr int kDeltaCountReg = 1;
inline constexpr int kDeltaOutReg = 5;

udp::Program build_delta_decode_program();

}  // namespace recode::udpprog
