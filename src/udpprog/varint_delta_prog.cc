#include "udpprog/varint_delta_prog.h"

namespace recode::udpprog {

using namespace udp;  // NOLINT: program builders read better unqualified

udp::Program build_varint_delta_decode_program() {
  Program p;

  // Registers: R1 count, R2 accumulator (prefix sum), R3 zigzag value,
  // R4 tmp, R5 out cursor, R6 varint shift, R7 varint byte.
  constexpr int kR1 = kVarintDeltaCountReg;
  constexpr int kR2 = 2;
  constexpr int kR3 = 3;
  constexpr int kR4 = 4;
  constexpr int kR5 = kVarintDeltaOutReg;
  constexpr int kR6 = 6;
  constexpr int kR7 = 7;

  DispatchSpec loop_spec;
  loop_spec.kind = DispatchKind::kRegisterBool;
  loop_spec.reg = kR1;
  const StateId loop = p.add_state("loop", loop_spec);

  DispatchSpec byte_spec;
  byte_spec.kind = DispatchKind::kDirect;
  const StateId vbyte = p.add_state("vbyte", byte_spec);

  DispatchSpec cont_spec;  // dispatch on the continuation bit
  cont_spec.kind = DispatchKind::kRegister;
  cont_spec.reg = kR7;
  cont_spec.shift = 7;
  cont_spec.mask = 1;
  const StateId vtest = p.add_state("vtest", cont_spec);

  DispatchSpec sign_spec;  // dispatch on zigzag parity
  sign_spec.kind = DispatchKind::kRegister;
  sign_spec.reg = kR3;
  sign_spec.shift = 0;
  sign_spec.mask = 1;
  const StateId sign = p.add_state("sign", sign_spec);

  DispatchSpec halt_spec;
  halt_spec.kind = DispatchKind::kHalt;
  const StateId halt = p.add_state("halt", halt_spec);

  // loop: done, or reset the varint accumulator for the next group.
  p.add_arc(loop, 0, {}, halt);
  p.add_arc(loop, 1,
            {act::set_imm(kR3, 0), act::set_imm(kR6, 0)}, vbyte);

  // vbyte: consume one stream byte.
  p.add_arc(vbyte, 0, {act::stream_read_le(kR7, 1)}, vtest);

  // vtest: accumulate the 7-bit group; continuation bit selects the arc.
  p.add_arc(vtest, 1,
            {
                act::and_(kR4, kR7, Operand::immediate(0x7F)),
                act::shl(kR4, kR4, Operand::r(kR6)),
                act::or_(kR3, kR3, Operand::r(kR4)),
                act::add(kR6, kR6, Operand::immediate(7)),
            },
            vbyte);
  p.add_arc(vtest, 0,
            {
                act::and_(kR4, kR7, Operand::immediate(0x7F)),
                act::shl(kR4, kR4, Operand::r(kR6)),
                act::or_(kR3, kR3, Operand::r(kR4)),
            },
            sign);

  // sign: unzigzag and emit, exactly as in the fixed-width delta program.
  p.add_arc(sign, 0,
            {
                act::shr(kR4, kR3, Operand::immediate(1)),
                act::add(kR2, kR2, Operand::r(kR4)),
                act::store_le(kR2, kR5, 0, 4),
                act::add(kR5, kR5, Operand::immediate(4)),
                act::sub(kR1, kR1, Operand::immediate(1)),
            },
            loop);
  p.add_arc(sign, 1,
            {
                act::shr(kR4, kR3, Operand::immediate(1)),
                act::not_(kR4, kR4),
                act::add(kR2, kR2, Operand::r(kR4)),
                act::store_le(kR2, kR5, 0, 4),
                act::add(kR5, kR5, Operand::immediate(4)),
                act::sub(kR1, kR1, Operand::immediate(1)),
            },
            loop);

  p.set_entry(loop);
  p.validate();
  return p;
}

}  // namespace recode::udpprog
