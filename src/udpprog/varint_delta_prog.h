// Varint-delta index decode as a UDP program — the §VII custom-encoding
// direction, and the showcase for the lane's *variable-size symbol*
// support: each LEB128 group is consumed a byte at a time with the
// continuation bit driving a 2-way dispatch, no length field and no
// branch prediction anywhere.
//
// Register convention (mirrors delta_prog):
//   R1 (in)  word count
//   R5 (in)  scratchpad output base; (out) one past the last byte written
#pragma once

#include "udp/program.h"

namespace recode::udpprog {

inline constexpr int kVarintDeltaCountReg = 1;
inline constexpr int kVarintDeltaOutReg = 5;

udp::Program build_varint_delta_decode_program();

}  // namespace recode::udpprog
