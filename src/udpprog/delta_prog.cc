#include "udpprog/delta_prog.h"

namespace recode::udpprog {

using namespace udp;         // NOLINT: program builders read better unqualified
using udp::Operand;

udp::Program build_delta_decode_program() {
  Program p;

  // Registers: R1 count, R2 accumulator, R3 zigzag word, R4 tmp, R5 out.
  constexpr int kR1 = kDeltaCountReg;
  constexpr int kR2 = 2;
  constexpr int kR3 = 3;
  constexpr int kR4 = 4;
  constexpr int kR5 = kDeltaOutReg;

  DispatchSpec loop_spec;
  loop_spec.kind = DispatchKind::kRegisterBool;
  loop_spec.reg = kR1;
  const StateId loop = p.add_state("loop", loop_spec);

  DispatchSpec sign_spec;
  sign_spec.kind = DispatchKind::kRegister;
  sign_spec.reg = kR3;
  sign_spec.shift = 0;
  sign_spec.mask = 1;
  const StateId sign = p.add_state("sign", sign_spec);

  DispatchSpec halt_spec;
  halt_spec.kind = DispatchKind::kHalt;
  const StateId halt = p.add_state("halt", halt_spec);

  // loop: count == 0 -> halt; else fetch the next zigzag word.
  p.add_arc(loop, 0, {}, halt);
  p.add_arc(loop, 1, {act::stream_read_le(kR3, 4)}, sign);

  // sign 0 (even zigzag): delta = z >> 1.
  p.add_arc(sign, 0,
            {
                act::shr(kR4, kR3, Operand::immediate(1)),
                act::add(kR2, kR2, Operand::r(kR4)),
                act::store_le(kR2, kR5, 0, 4),  // store truncates mod 2^32
                act::add(kR5, kR5, Operand::immediate(4)),
                act::sub(kR1, kR1, Operand::immediate(1)),
            },
            loop);

  // sign 1 (odd zigzag): delta = -(z >> 1) - 1 == ~(z >> 1).
  p.add_arc(sign, 1,
            {
                act::shr(kR4, kR3, Operand::immediate(1)),
                act::not_(kR4, kR4),
                act::add(kR2, kR2, Operand::r(kR4)),
                act::store_le(kR2, kR5, 0, 4),
                act::add(kR5, kR5, Operand::immediate(4)),
                act::sub(kR1, kR1, Operand::immediate(1)),
            },
            loop);

  p.set_entry(loop);
  p.validate();
  return p;
}

}  // namespace recode::udpprog
