#include "udpprog/huffman_prog.h"

#include <map>

namespace recode::udpprog {

using namespace udp;  // NOLINT: program builders read better unqualified
using codec::HuffmanTable;
using codec::kMaxCodeLen;

udp::Program build_huffman_decode_program(const HuffmanTable& table) {
  Program p;

  // Registers: R1 symbol count (varint), R2 varint byte, R3 symbol,
  // R5 output cursor, R6 varint shift, R7 tmp.
  constexpr int kR1 = 1, kR2 = 2, kR3 = 3, kR5 = kHuffmanOutReg, kR6 = 6,
                kR7 = 7;

  DispatchSpec direct;
  direct.kind = DispatchKind::kDirect;

  DispatchSpec halt_spec;
  halt_spec.kind = DispatchKind::kHalt;

  const StateId vint = p.add_state("vint", direct);

  DispatchSpec vint_test_spec;
  vint_test_spec.kind = DispatchKind::kRegister;
  vint_test_spec.reg = kR2;
  vint_test_spec.shift = 7;
  vint_test_spec.mask = 1;
  const StateId vint_test = p.add_state("vint_test", vint_test_spec);

  DispatchSpec check_spec;
  check_spec.kind = DispatchKind::kRegisterBool;
  check_spec.reg = kR1;
  const StateId check = p.add_state("check", check_spec);

  DispatchSpec l1_spec;
  l1_spec.kind = DispatchKind::kStreamBits;
  l1_spec.bits = 8;
  const StateId l1 = p.add_state("l1", l1_spec);

  const StateId halt = p.add_state("halt", halt_spec);

  // --- varint(symbol count) parse ---
  p.add_arc(vint, 0, {act::stream_read_bits(kR2, Operand::immediate(8))},
            vint_test);
  const std::vector<Action> accumulate = {
      act::and_(kR7, kR2, Operand::immediate(0x7F)),
      act::shl(kR7, kR7, Operand::r(kR6)),
      act::or_(kR1, kR1, Operand::r(kR7)),
      act::add(kR6, kR6, Operand::immediate(7)),
  };
  p.add_arc(vint_test, 1, accumulate, vint);  // continuation bit set
  p.add_arc(vint_test, 0,
            {
                act::and_(kR7, kR2, Operand::immediate(0x7F)),
                act::shl(kR7, kR7, Operand::r(kR6)),
                act::or_(kR1, kR1, Operand::r(kR7)),
            },
            check);

  // --- count check loop ---
  p.add_arc(check, 0, {}, halt);
  p.add_arc(check, 1, {}, l1);

  // Emits symbol `sym` whose code occupies `len` of the `seen` bits already
  // consumed by the dispatch(es).
  auto emit_actions = [&](std::uint8_t sym, int len, int seen) {
    std::vector<Action> actions;
    if (seen > len) {
      actions.push_back(act::stream_rewind_bits(
          Operand::immediate(static_cast<std::uint64_t>(seen - len))));
    }
    actions.push_back(act::set_imm(kR3, sym));
    actions.push_back(act::store_le(kR3, kR5, 0, 1));
    actions.push_back(act::add(kR5, kR5, Operand::immediate(1)));
    actions.push_back(act::sub(kR1, kR1, Operand::immediate(1)));
    return actions;
  };

  // --- level-1: dispatch on the next 8 bits ---
  const HuffmanTable::DecodeEntry* dt = table.decode_table();
  std::map<std::uint32_t, StateId> l2_states;  // prefix -> state
  DispatchSpec l2_spec;
  l2_spec.kind = DispatchKind::kStreamBits;
  l2_spec.bits = kMaxCodeLen - 8;  // 7 bits

  for (std::uint32_t prefix = 0; prefix < 256; ++prefix) {
    const auto entry = dt[prefix << (kMaxCodeLen - 8)];
    if (entry.length <= 8) {
      // The 8-bit prefix fully determines the code.
      p.add_arc(l1, prefix, emit_actions(entry.symbol, entry.length, 8),
                check);
    } else {
      const StateId l2 =
          p.add_state("l2_" + std::to_string(prefix), l2_spec);
      l2_states[prefix] = l2;
      p.add_arc(l1, prefix, {}, l2);
    }
  }

  // --- level-2 states for long codes ---
  for (const auto& [prefix, l2] : l2_states) {
    for (std::uint32_t suffix = 0; suffix < (1u << (kMaxCodeLen - 8));
         ++suffix) {
      const std::uint32_t window = (prefix << (kMaxCodeLen - 8)) | suffix;
      const auto entry = dt[window];
      p.add_arc(l2, suffix,
                emit_actions(entry.symbol, entry.length, kMaxCodeLen), check);
    }
  }

  p.set_entry(vint);
  p.validate();
  return p;
}

}  // namespace recode::udpprog
