#include "udpprog/snappy_prog.h"

namespace recode::udpprog {

using namespace udp;  // NOLINT: program builders read better unqualified

udp::Program build_snappy_decode_program() {
  Program p;

  // Registers: R1 varint acc / decoded length, R2 varint byte, R3 length,
  // R4 offset, R5 out cursor, R6 varint shift, R7 tmp, R8 copy source,
  // R9 out base, R10 end pointer.
  constexpr int kR1 = 1, kR2 = 2, kR3 = 3, kR4 = 4, kR5 = kSnappyOutReg,
                kR6 = 6, kR7 = 7, kR8 = 8, kR9 = kSnappyBaseReg, kR10 = 10;

  DispatchSpec direct;
  direct.kind = DispatchKind::kDirect;

  DispatchSpec halt_spec;
  halt_spec.kind = DispatchKind::kHalt;

  const StateId vint = p.add_state("vint", direct);

  DispatchSpec vint_test_spec;
  vint_test_spec.kind = DispatchKind::kRegister;
  vint_test_spec.reg = kR2;
  vint_test_spec.shift = 7;
  vint_test_spec.mask = 1;
  const StateId vint_test = p.add_state("vint_test", vint_test_spec);

  // end_check computes remaining = end - cursor, then rem_test branches.
  const StateId end_check = p.add_state("end_check", direct);
  DispatchSpec rem_spec;
  rem_spec.kind = DispatchKind::kRegisterBool;
  rem_spec.reg = kR7;
  const StateId rem_test = p.add_state("rem_test", rem_spec);

  DispatchSpec tag_spec;
  tag_spec.kind = DispatchKind::kStreamBits;
  tag_spec.bits = 8;
  const StateId tag = p.add_state("tag", tag_spec);

  const StateId halt = p.add_state("halt", halt_spec);

  // --- varint(decoded length) ---
  p.add_arc(vint, 0, {act::stream_read_le(kR2, 1)}, vint_test);
  p.add_arc(vint_test, 1,
            {
                act::and_(kR7, kR2, Operand::immediate(0x7F)),
                act::shl(kR7, kR7, Operand::r(kR6)),
                act::or_(kR1, kR1, Operand::r(kR7)),
                act::add(kR6, kR6, Operand::immediate(7)),
            },
            vint);
  p.add_arc(vint_test, 0,
            {
                act::and_(kR7, kR2, Operand::immediate(0x7F)),
                act::shl(kR7, kR7, Operand::r(kR6)),
                act::or_(kR1, kR1, Operand::r(kR7)),
                act::add(kR10, kR9, Operand::r(kR1)),  // end = base + len
            },
            end_check);

  // --- termination test: cursor == end ---
  p.add_arc(end_check, 0, {act::sub(kR7, kR10, Operand::r(kR5))}, rem_test);
  p.add_arc(rem_test, 0, {}, halt);
  p.add_arc(rem_test, 1, {}, tag);

  // --- 256-way tag dispatch ---
  for (std::uint32_t t = 0; t < 256; ++t) {
    const std::uint32_t kind = t & 3;
    std::vector<Action> actions;
    if (kind == 0) {  // literal
      const std::uint32_t len_code = t >> 2;
      if (len_code < 60) {
        const std::uint64_t len = len_code + 1;
        actions = {
            act::stream_copy(kR5, Operand::immediate(len)),
            act::add(kR5, kR5, Operand::immediate(len)),
        };
      } else {
        // 1-4 extra little-endian length bytes.
        const int extra = static_cast<int>(len_code - 59);
        if (extra == 3) {
          actions = {
              act::stream_read_le(kR3, 2),
              act::stream_read_le(kR7, 1),
              act::shl(kR7, kR7, Operand::immediate(16)),
              act::or_(kR3, kR3, Operand::r(kR7)),
          };
        } else {
          actions = {act::stream_read_le(kR3, extra)};
        }
        actions.push_back(act::add(kR3, kR3, Operand::immediate(1)));
        actions.push_back(act::stream_copy(kR5, Operand::r(kR3)));
        actions.push_back(act::add(kR5, kR5, Operand::r(kR3)));
      }
    } else if (kind == 1) {  // copy, 1-byte offset
      const std::uint64_t len = ((t >> 2) & 0x7) + 4;
      const std::uint64_t off_high = static_cast<std::uint64_t>(t >> 5) << 8;
      actions = {
          act::stream_read_le(kR4, 1),
      };
      if (off_high != 0) {
        actions.push_back(act::or_(kR4, kR4, Operand::immediate(off_high)));
      }
      actions.push_back(act::sub(kR8, kR5, Operand::r(kR4)));
      actions.push_back(act::scratch_copy(kR5, kR8, Operand::immediate(len)));
      actions.push_back(act::add(kR5, kR5, Operand::immediate(len)));
    } else if (kind == 2) {  // copy, 2-byte offset
      const std::uint64_t len = (t >> 2) + 1;
      actions = {
          act::stream_read_le(kR4, 2),
          act::sub(kR8, kR5, Operand::r(kR4)),
          act::scratch_copy(kR5, kR8, Operand::immediate(len)),
          act::add(kR5, kR5, Operand::immediate(len)),
      };
    } else {  // copy, 4-byte offset
      const std::uint64_t len = (t >> 2) + 1;
      actions = {
          act::stream_read_le(kR4, 4),
          act::sub(kR8, kR5, Operand::r(kR4)),
          act::scratch_copy(kR5, kR8, Operand::immediate(len)),
          act::add(kR5, kR5, Operand::immediate(len)),
      };
    }
    p.add_arc(tag, t, std::move(actions), end_check);
  }

  p.set_entry(vint);
  p.validate();
  return p;
}

}  // namespace recode::udpprog
