// Snappy-format *compression* as a UDP program — the UDP as a
// programmable compression accelerator (§VI-D compares it against
// Microsoft Xpress FPGAs, Intel QuickAssist, and IBM PowerEN; the UDP's
// advantages are programmability and memory-system integration).
//
// The program implements the standard greedy hash matcher entirely in
// the lane: the input block is staged into the scratchpad, a 4096-entry
// hash table (multiply-shift over 4-byte windows) lives beside it, and
// literals/copies are emitted in the format of codec::SnappyCodec. The
// output is decodable by both the software decoder and the snappy decode
// UDP program.
//
// Scratchpad layout (64 KB lane budget):
//   [0, 16 KB)        staged input (max block 16 KB)
//   [16 KB, 32 KB)    hash table, 4096 x 4 B (position + 1; 0 = empty)
//   [32 KB, ...)      output stream
//
// Register convention:
//   R1 (in)  input byte count (<= 16 KB)
//   R5 (out) one past the last output byte (output starts at 32 KB)
#pragma once

#include "udp/program.h"

namespace recode::udpprog {

inline constexpr int kSnappyEncCountReg = 1;
inline constexpr int kSnappyEncOutReg = 5;
inline constexpr std::uint64_t kSnappyEncMaxInput = 16 * 1024;
inline constexpr std::uint64_t kSnappyEncHashBase = 16 * 1024;
inline constexpr std::uint64_t kSnappyEncOutBase = 32 * 1024;

udp::Program build_snappy_encode_program();

}  // namespace recode::udpprog
