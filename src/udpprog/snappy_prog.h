// Snappy-format decompression as a UDP program.
//
// The tag byte drives a 256-way dispatch: every (element type, inline
// length, offset-high-bits) combination is its own arc with the constants
// baked in, so there is no length/offset decoding arithmetic on the
// common path — the dispatch IS the decode. Literal runs use the stream
// copy engine (8 B/cycle); copies run through the scratchpad port with
// LZ overlap semantics.
//
// Stream format matches codec::SnappyCodec: varint(decoded length) then
// tagged elements. The varint preamble is parsed in-program.
// Register convention:
//   R5 (in)  scratchpad output base; (out) one past the last byte written
//   R9 (in)  must equal R5 (output base, kept for end-pointer computation)
#pragma once

#include "udp/program.h"

namespace recode::udpprog {

inline constexpr int kSnappyOutReg = 5;
inline constexpr int kSnappyBaseReg = 9;

udp::Program build_snappy_decode_program();

}  // namespace recode::udpprog
