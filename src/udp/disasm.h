// UDP program disassembler / inspector.
//
// Renders a Program's states, dispatch specs, and action lists as
// readable text (the reverse of what the paper's UDP assembler consumes)
// and summarizes a Layout's dispatch-memory map. This is the debugging
// surface for anyone writing new recoding programs against the ISA.
#pragma once

#include <string>

#include "udp/effclip.h"
#include "udp/program.h"

namespace recode::udp {

// One action as text, e.g. "add r2, r2, r4" or "stle1 [r5+0], r3".
std::string format_action(const Action& action);

// A state's dispatch spec, e.g. "dispatch stream[8]" or "dispatch r1!=0".
std::string format_dispatch(const DispatchSpec& spec);

// Full program listing: one block per state, one line per arc. Arc lines
// show symbol, actions, and the target state name.
std::string disassemble(const Program& program);

// Per-program summary: states, arcs, dispatch-table slots, density, and
// the largest fanout (the multi-way dispatch width the program needs).
struct ProgramSummary {
  std::size_t states = 0;
  std::size_t arcs = 0;
  std::size_t actions = 0;
  std::size_t table_slots = 0;
  double density = 0.0;
  std::size_t max_fanout = 0;
};
ProgramSummary summarize(const Layout& layout);

std::string format_summary(const std::string& name, const ProgramSummary& s);

}  // namespace recode::udp
