#include "udp/isa.h"

#include "common/error.h"

namespace recode::udp {

namespace act {

Action set_imm(int dst, std::uint64_t v) {
  Action a;
  a.op = Op::kSetImm;
  a.dst = dst;
  a.a = Operand::immediate(v);
  return a;
}

Action move(int dst, int src) {
  Action a;
  a.op = Op::kMove;
  a.dst = dst;
  a.a = Operand::r(src);
  return a;
}

namespace {
Action alu(Op op, int dst, int a_reg, Operand b) {
  Action a;
  a.op = op;
  a.dst = dst;
  a.a = Operand::r(a_reg);
  a.b = b;
  return a;
}
}  // namespace

Action add(int dst, int a, Operand b) { return alu(Op::kAdd, dst, a, b); }
Action sub(int dst, int a, Operand b) { return alu(Op::kSub, dst, a, b); }
Action and_(int dst, int a, Operand b) { return alu(Op::kAnd, dst, a, b); }
Action or_(int dst, int a, Operand b) { return alu(Op::kOr, dst, a, b); }
Action xor_(int dst, int a, Operand b) { return alu(Op::kXor, dst, a, b); }
Action not_(int dst, int a) { return alu(Op::kNot, dst, a, Operand::immediate(0)); }
Action shl(int dst, int a, Operand b) { return alu(Op::kShl, dst, a, b); }
Action shr(int dst, int a, Operand b) { return alu(Op::kShr, dst, a, b); }
Action sar(int dst, int a, Operand b) { return alu(Op::kSar, dst, a, b); }
Action mul(int dst, int a, Operand b) { return alu(Op::kMul, dst, a, b); }

Action load_le(int dst, int addr_reg, std::uint64_t offset, int width) {
  Action a;
  a.op = Op::kLoadLe;
  a.dst = dst;
  a.a = Operand::r(addr_reg);
  a.b = Operand::immediate(offset);
  a.width = width;
  return a;
}

Action store_le(int src, int addr_reg, std::uint64_t offset, int width) {
  Action a;
  a.op = Op::kStoreLe;
  a.dst = src;  // register holding the value to store
  a.a = Operand::r(addr_reg);
  a.b = Operand::immediate(offset);
  a.width = width;
  return a;
}

Action stream_read_bits(int dst, Operand nbits) {
  Action a;
  a.op = Op::kStreamReadBits;
  a.dst = dst;
  a.b = nbits;
  return a;
}

Action stream_peek_bits(int dst, Operand nbits) {
  Action a;
  a.op = Op::kStreamPeekBits;
  a.dst = dst;
  a.b = nbits;
  return a;
}

Action stream_skip_bits(Operand nbits) {
  Action a;
  a.op = Op::kStreamSkipBits;
  a.b = nbits;
  return a;
}

Action stream_rewind_bits(Operand nbits) {
  Action a;
  a.op = Op::kStreamRewindBits;
  a.b = nbits;
  return a;
}

Action stream_read_le(int dst, int width) {
  Action a;
  a.op = Op::kStreamReadLe;
  a.dst = dst;
  a.width = width;
  return a;
}

Action stream_copy(int dst_addr_reg, Operand nbytes) {
  Action a;
  a.op = Op::kStreamCopy;
  a.a = Operand::r(dst_addr_reg);
  a.b = nbytes;
  return a;
}

Action scratch_copy(int dst_addr_reg, int src_addr_reg, Operand nbytes) {
  Action a;
  a.op = Op::kScratchCopy;
  a.dst = dst_addr_reg;
  a.a = Operand::r(src_addr_reg);
  a.b = nbytes;
  return a;
}

}  // namespace act

std::size_t DispatchSpec::fanout() const {
  switch (kind) {
    case DispatchKind::kDirect:
      return 1;
    case DispatchKind::kStreamBits:
      RECODE_CHECK(bits >= 1 && bits <= 16);
      return std::size_t{1} << bits;
    case DispatchKind::kRegister:
      return static_cast<std::size_t>(mask) + 1;
    case DispatchKind::kRegisterBool:
      return 2;
    case DispatchKind::kHalt:
      return 0;
  }
  return 0;
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kSetImm: return "set";
    case Op::kMove: return "mov";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNot: return "not";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kSar: return "sar";
    case Op::kMul: return "mul";
    case Op::kLoadLe: return "ldle";
    case Op::kStoreLe: return "stle";
    case Op::kStreamReadBits: return "srdb";
    case Op::kStreamPeekBits: return "spkb";
    case Op::kStreamSkipBits: return "sskb";
    case Op::kStreamRewindBits: return "srwb";
    case Op::kStreamReadLe: return "srdl";
    case Op::kStreamCopy: return "scpy";
    case Op::kScratchCopy: return "mcpy";
  }
  return "?";
}

}  // namespace recode::udp
