#include "udp/effclip.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace recode::udp {

Layout::Layout(Program program) : program_(std::move(program)) {
  program_.validate();

  // Place larger-fanout states first: their base constraints are the
  // hardest to satisfy, and small states fill the holes they leave.
  std::vector<StateId> order(program_.state_count());
  std::iota(order.begin(), order.end(), StateId{0});
  std::sort(order.begin(), order.end(), [&](StateId a, StateId b) {
    const std::size_t fa = program_.state(a).arcs.size();
    const std::size_t fb = program_.state(b).arcs.size();
    if (fa != fb) return fa > fb;
    return a < b;
  });

  bases_.assign(program_.state_count(), 0);
  slots_.resize(std::max<std::size_t>(1, program_.arc_count()));

  for (const StateId sid : order) {
    const State& state = program_.state(sid);
    if (state.arcs.empty()) continue;  // halt states occupy no slots

    // First-fit linear probe over candidate bases.
    std::uint32_t candidate = 0;
    for (;;) {
      bool fits = true;
      for (const Arc& arc : state.arcs) {
        const std::size_t addr =
            static_cast<std::size_t>(candidate) + arc.symbol;
        if (addr >= slots_.size()) {
          slots_.resize(addr + 1);  // grow; density accounts for it
        }
        if (slots_[addr].valid) {
          fits = false;
          break;
        }
      }
      if (fits) break;
      ++candidate;
    }
    bases_[static_cast<std::size_t>(sid)] = candidate;
    for (const Arc& arc : state.arcs) {
      Slot& slot = slots_[static_cast<std::size_t>(candidate) + arc.symbol];
      slot.valid = true;
      slot.owner = sid;
      slot.symbol = arc.symbol;
      slot.arc = &arc;
      ++occupied_;
    }
  }

  // Trim trailing free slots so density reflects the real footprint.
  while (!slots_.empty() && !slots_.back().valid) slots_.pop_back();
}

const Slot& Layout::slot(std::uint32_t addr) const {
  static const Slot kInvalid{};
  if (static_cast<std::size_t>(addr) >= slots_.size()) return kInvalid;
  return slots_[addr];
}

}  // namespace recode::udp
