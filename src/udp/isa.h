// UDP (Unstructured Data Processor) instruction set, reconstructed from
// the public descriptions of the UDP/UAP line of work (MICRO'15 UAP,
// MICRO'17 UDP, and §III-E of the IPDPS'19 paper this library reproduces).
//
// A UDP program is a set of *states*. Each state owns a *dispatch spec*
// describing how the next symbol is obtained (consume k bits from the
// input stream, examine a data register, or nothing for direct arcs) and
// a set of *arcs*, one per symbol value. Each arc carries an ordered
// action list plus the id of the next state. Multi-way dispatch is the
// signature feature: the machine jumps to `base[state] + symbol` in a
// densely packed dispatch memory laid out by EffCLiP, so a 256-way branch
// costs one cycle and no prediction.
//
// Actions run on the lane's Action unit: a small 16x64-bit register file,
// a single-issue ALU, byte-addressed scratchpad access, and stream-cursor
// manipulation. The Stream Prefetch unit hides input latency, so stream
// reads cost no extra cycles (the paper's intended steady state).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace recode::udp {

inline constexpr int kNumRegisters = 16;
inline constexpr std::size_t kDefaultScratchpadBytes = 64 * 1024;

// Action opcodes. ALU ops compute dst = a OP b (b may be an immediate).
enum class Op : std::uint8_t {
  kSetImm,   // dst = imm
  kMove,     // dst = reg a
  kAdd,      // dst = a + b
  kSub,      // dst = a - b
  kAnd,      // dst = a & b
  kOr,       // dst = a | b
  kXor,      // dst = a ^ b
  kNot,      // dst = ~a
  kShl,      // dst = a << b
  kShr,      // dst = a >> b (logical)
  kSar,      // dst = a >> b (arithmetic, 64-bit)
  kMul,      // dst = a * b (mod 2^64; hash functions, strides)

  kLoadLe,   // dst = scratch[a + imm], little-endian, `width` bytes
  kStoreLe,  // scratch[a + imm] = src reg (register field `dst`), `width` bytes

  kStreamReadBits,    // dst = next b bits of the stream (MSB-first), consume
  kStreamPeekBits,    // dst = next b bits, do not consume (zero-padded at end)
  kStreamSkipBits,    // consume b bits (b = reg or imm)
  kStreamRewindBits,  // move the stream cursor back b bits
  kStreamReadLe,      // dst = next `width` whole bytes as little-endian, consume

  kStreamCopy,   // copy b bytes from the stream to scratch[a], consume
  kScratchCopy,  // copy b bytes from scratch[src=a] to scratch[dst reg field]
};

// Register-or-immediate operand.
struct Operand {
  bool is_imm = true;
  std::uint64_t imm = 0;
  int reg = 0;

  static Operand immediate(std::uint64_t v) { return {true, v, 0}; }
  static Operand r(int reg) { return {false, 0, reg}; }
};

struct Action {
  Op op = Op::kSetImm;
  int dst = 0;       // destination register (or source register for kStoreLe)
  Operand a;         // first operand (register for address/ALU source)
  Operand b;         // second operand / bit count / byte count
  int width = 8;     // byte width for kLoadLe/kStoreLe/kStreamReadLe
};

// Convenience constructors keep the program builders readable.
namespace act {
Action set_imm(int dst, std::uint64_t v);
Action move(int dst, int src);
Action add(int dst, int a, Operand b);
Action sub(int dst, int a, Operand b);
Action and_(int dst, int a, Operand b);
Action or_(int dst, int a, Operand b);
Action xor_(int dst, int a, Operand b);
Action not_(int dst, int a);
Action shl(int dst, int a, Operand b);
Action shr(int dst, int a, Operand b);
Action sar(int dst, int a, Operand b);
Action mul(int dst, int a, Operand b);
Action load_le(int dst, int addr_reg, std::uint64_t offset, int width);
Action store_le(int src, int addr_reg, std::uint64_t offset, int width);
Action stream_read_bits(int dst, Operand nbits);
Action stream_peek_bits(int dst, Operand nbits);
Action stream_skip_bits(Operand nbits);
Action stream_rewind_bits(Operand nbits);
Action stream_read_le(int dst, int width);
Action stream_copy(int dst_addr_reg, Operand nbytes);
Action scratch_copy(int dst_addr_reg, int src_addr_reg, Operand nbytes);
}  // namespace act

// How a state obtains its dispatch symbol.
enum class DispatchKind : std::uint8_t {
  kDirect,      // no symbol; single arc 0
  kStreamBits,  // consume `bits` stream bits; symbol = their value
  kRegister,    // symbol = (reg >> shift) & mask, no stream access
  kRegisterBool,// symbol = (reg != 0) ? 1 : 0
  kHalt,        // terminal state; no arcs
};

struct DispatchSpec {
  DispatchKind kind = DispatchKind::kDirect;
  int bits = 0;            // kStreamBits
  int reg = 0;             // kRegister / kRegisterBool
  int shift = 0;           // kRegister
  std::uint64_t mask = 0;  // kRegister

  // Number of symbol slots this dispatch can produce.
  std::size_t fanout() const;
};

using StateId = std::int32_t;

struct Arc {
  std::uint32_t symbol = 0;
  std::vector<Action> actions;
  StateId next = -1;
};

struct State {
  std::string name;  // for diagnostics
  DispatchSpec dispatch;
  std::vector<Arc> arcs;
};

const char* op_name(Op op);

}  // namespace recode::udp
