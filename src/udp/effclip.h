// EffCLiP — Efficient Coupled Linear Packing (Fang, Lehane, Chien,
// UChicago TR-2015-05) — reconstructed layout pass.
//
// Multi-way dispatch requires that the machine-code slot for (state s,
// symbol σ) live at address base(s) + σ: the "hash" is a plain integer
// add, which is what lets the UDP dispatch in one cycle with no branch
// prediction and no target table. EffCLiP's job is to choose base(s) for
// every state so all occupied slots land on distinct addresses while the
// overall table stays dense ("perfect hashing" for the arc set).
//
// This implementation uses first-fit linear probing over candidate bases
// (the published algorithm's greedy core): states are placed in
// decreasing-fanout order, each at the lowest base whose occupied symbol
// offsets are all free. Density (arcs / table size) is reported so tests
// can assert near-perfect packing on the real codec programs.
#pragma once

#include <cstdint>
#include <vector>

#include "udp/program.h"

namespace recode::udp {

// One dispatch-memory slot: the machine form of an arc.
struct Slot {
  bool valid = false;
  StateId owner = -1;        // state whose arc occupies this slot
  std::uint32_t symbol = 0;  // symbol within the owner's dispatch
  const Arc* arc = nullptr;  // borrowed from the Program
};

// A laid-out ("assembled") program: dispatch memory plus per-state bases.
// Owns its copy of the Program, so temporaries are safe to pass; the
// Layout itself is immovable (slots point into the owned program).
class Layout {
 public:
  // Runs EffCLiP placement. Throws recode::Error if the program is
  // invalid. Never fails to place (the table grows as needed).
  explicit Layout(Program program);

  Layout(const Layout&) = delete;
  Layout& operator=(const Layout&) = delete;

  const Program& program() const { return program_; }

  std::uint32_t base(StateId s) const {
    return bases_[static_cast<std::size_t>(s)];
  }

  // Slot lookup used by the lane's Dispatch unit: addr = base + symbol.
  const Slot& slot(std::uint32_t addr) const;

  std::size_t table_size() const { return slots_.size(); }
  std::size_t occupied() const { return occupied_; }

  // Packing density achieved (occupied / table_size).
  double density() const {
    return slots_.empty() ? 1.0
                          : static_cast<double>(occupied_) /
                                static_cast<double>(slots_.size());
  }

 private:
  Program program_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> bases_;
  std::size_t occupied_ = 0;
};

}  // namespace recode::udp
