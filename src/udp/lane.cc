#include "udp/lane.h"

#include <cstring>

#include "common/error.h"
#include "telemetry/telemetry.h"

namespace recode::udp {

namespace {

// Registry handles for the lane-level counters, resolved once. Lane::run
// mirrors its LaneCounters into these on every successful run so the
// cycle-simulator activity shows up in the process-wide metrics snapshot
// alongside the streaming-executor and codec counters.
struct LaneTelemetry {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& runs = reg.counter("udp.lane.runs");
  telemetry::Counter& cycles = reg.counter("udp.lane.cycles");
  telemetry::Counter& transitions = reg.counter("udp.lane.transitions");
  telemetry::Counter& actions = reg.counter("udp.lane.actions");
  telemetry::Counter& stream_bits = reg.counter("udp.lane.stream_bits");
  telemetry::Counter& scratch_read =
      reg.counter("udp.lane.scratch_read_bytes");
  telemetry::Counter& scratch_written =
      reg.counter("udp.lane.scratch_written_bytes");

  static LaneTelemetry& get() {
    static LaneTelemetry* t = new LaneTelemetry();
    return *t;
  }
};

}  // namespace

Lane::Lane(const Layout& layout, LaneConfig config)
    : layout_(&layout), config_(config) {
  scratch_.resize(config_.scratchpad_bytes);
}

std::uint64_t Lane::reg(int r) const {
  RECODE_CHECK(r >= 0 && r < kNumRegisters);
  return regs_[r];
}

std::uint64_t Lane::stream_bits(int nbits, bool consume) {
  // The width can come from a register (kStreamReadBits with a register
  // operand), whose value can be derived from untrusted stream bytes — a
  // corrupt stream must fault the lane, not abort the process.
  if (nbits < 0 || nbits > 32) fail("udp lane: bad bit-read width");
  const std::uint64_t total_bits = static_cast<std::uint64_t>(input_.size()) * 8;
  if (bit_pos_ >= total_bits && nbits > 0) {
    fail("udp lane: stream exhausted");
  }
  // MSB-first read with zero padding past the end (codec convention).
  std::uint64_t v = 0;
  for (int i = 0; i < nbits; ++i) {
    const std::uint64_t p = bit_pos_ + static_cast<std::uint64_t>(i);
    std::uint64_t bit = 0;
    if (p < total_bits) {
      bit = (input_[p / 8] >> (7 - (p % 8))) & 1u;
    }
    v = (v << 1) | bit;
  }
  if (consume) {
    bit_pos_ += static_cast<std::uint64_t>(nbits);
    counters_.stream_bits_consumed += static_cast<std::uint64_t>(nbits);
  }
  return v;
}

void Lane::stream_skip(std::uint64_t nbits) {
  // Skip counts can be register values decoded from the stream; guard the
  // position against wrap-around so later bounds checks stay sound.
  if (nbits > UINT64_MAX - bit_pos_) fail("udp lane: skip overflows stream");
  bit_pos_ += nbits;
  counters_.stream_bits_consumed += nbits;
}

void Lane::stream_rewind(std::uint64_t nbits) {
  if (nbits > bit_pos_) fail("udp lane: rewind before stream start");
  bit_pos_ -= nbits;
}

std::uint64_t Lane::stream_read_le(int width) {
  if (bit_pos_ % 8 != 0) fail("udp lane: byte read on unaligned stream");
  const std::uint64_t byte_pos = bit_pos_ / 8;
  if (byte_pos + static_cast<std::uint64_t>(width) > input_.size()) {
    fail("udp lane: stream exhausted (byte read)");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(input_[byte_pos + static_cast<std::uint64_t>(i)])
         << (8 * i);
  }
  bit_pos_ += static_cast<std::uint64_t>(width) * 8;
  counters_.stream_bits_consumed += static_cast<std::uint64_t>(width) * 8;
  return v;
}

void Lane::scratch_check(std::uint64_t addr, std::uint64_t len) const {
  if (addr + len > scratch_.size() || addr + len < addr) {
    fail("udp lane: scratchpad access out of bounds");
  }
}

void Lane::stream_copy_to_scratch(std::uint64_t dst, std::uint64_t nbytes) {
  if (bit_pos_ % 8 != 0) fail("udp lane: byte copy on unaligned stream");
  const std::uint64_t byte_pos = bit_pos_ / 8;
  if (byte_pos + nbytes > input_.size()) {
    fail("udp lane: stream exhausted (copy)");
  }
  scratch_check(dst, nbytes);
  std::memcpy(scratch_.data() + dst, input_.data() + byte_pos, nbytes);
  bit_pos_ += nbytes * 8;
  counters_.stream_bits_consumed += nbytes * 8;
  counters_.scratch_bytes_written += nbytes;
}

std::uint64_t Lane::operand(const Operand& o) const {
  return o.is_imm ? o.imm : regs_[o.reg];
}

std::uint64_t Lane::execute(const Action& a) {
  ++counters_.actions;
  switch (a.op) {
    case Op::kSetImm:
      regs_[a.dst] = a.a.imm;
      return 0;
    case Op::kMove:
      regs_[a.dst] = operand(a.a);
      return 0;
    case Op::kAdd:
      regs_[a.dst] = operand(a.a) + operand(a.b);
      return 0;
    case Op::kSub:
      regs_[a.dst] = operand(a.a) - operand(a.b);
      return 0;
    case Op::kAnd:
      regs_[a.dst] = operand(a.a) & operand(a.b);
      return 0;
    case Op::kOr:
      regs_[a.dst] = operand(a.a) | operand(a.b);
      return 0;
    case Op::kXor:
      regs_[a.dst] = operand(a.a) ^ operand(a.b);
      return 0;
    case Op::kNot:
      regs_[a.dst] = ~operand(a.a);
      return 0;
    case Op::kShl:
      regs_[a.dst] = operand(a.a) << (operand(a.b) & 63);
      return 0;
    case Op::kShr:
      regs_[a.dst] = operand(a.a) >> (operand(a.b) & 63);
      return 0;
    case Op::kSar:
      regs_[a.dst] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(operand(a.a)) >>
          (operand(a.b) & 63));
      return 0;
    case Op::kMul:
      regs_[a.dst] = operand(a.a) * operand(a.b);
      return 0;
    case Op::kLoadLe: {
      const std::uint64_t addr = operand(a.a) + a.b.imm;
      scratch_check(addr, static_cast<std::uint64_t>(a.width));
      std::uint64_t v = 0;
      std::memcpy(&v, scratch_.data() + addr, static_cast<std::size_t>(a.width));
      regs_[a.dst] = v;
      counters_.scratch_bytes_read += static_cast<std::uint64_t>(a.width);
      return 0;
    }
    case Op::kStoreLe: {
      const std::uint64_t addr = operand(a.a) + a.b.imm;
      scratch_check(addr, static_cast<std::uint64_t>(a.width));
      const std::uint64_t v = regs_[a.dst];
      std::memcpy(scratch_.data() + addr, &v, static_cast<std::size_t>(a.width));
      counters_.scratch_bytes_written += static_cast<std::uint64_t>(a.width);
      return 0;
    }
    case Op::kStreamReadBits:
      regs_[a.dst] = stream_bits(static_cast<int>(operand(a.b)), true);
      return 0;
    case Op::kStreamPeekBits:
      regs_[a.dst] = stream_bits(static_cast<int>(operand(a.b)), false);
      return 0;
    case Op::kStreamSkipBits:
      stream_skip(operand(a.b));
      return 0;
    case Op::kStreamRewindBits:
      stream_rewind(operand(a.b));
      return 0;
    case Op::kStreamReadLe:
      regs_[a.dst] = stream_read_le(a.width);
      return 0;
    case Op::kStreamCopy: {
      const std::uint64_t dst = operand(a.a);
      const std::uint64_t n = operand(a.b);
      stream_copy_to_scratch(dst, n);
      // 8 B/cycle through the scratchpad port; first beat rides the
      // action slot.
      return n == 0 ? 0 : (n + 7) / 8 - 1;
    }
    case Op::kScratchCopy: {
      const std::uint64_t dst = regs_[a.dst];
      const std::uint64_t src = operand(a.a);
      const std::uint64_t n = operand(a.b);
      scratch_check(src, n);
      scratch_check(dst, n);
      // Overlapping forward copy replicates bytes (LZ semantics).
      const bool overlap = dst > src && dst - src < 8;
      for (std::uint64_t i = 0; i < n; ++i) {
        scratch_[dst + i] = scratch_[src + i];
      }
      counters_.scratch_bytes_read += n;
      counters_.scratch_bytes_written += n;
      if (n == 0) return 0;
      const std::uint64_t rate = overlap ? 1 : 8;
      return (n + rate - 1) / rate - 1;
    }
  }
  fail("udp lane: unknown opcode");
}

const LaneCounters& Lane::run(
    std::span<const std::uint8_t> input,
    std::span<const std::pair<int, std::uint64_t>> init_regs) {
  counters_ = LaneCounters{};
  std::fill(scratch_.begin(), scratch_.end(), std::uint8_t{0});
  std::memset(regs_, 0, sizeof(regs_));
  input_ = input;
  bit_pos_ = 0;
  for (const auto& [r, v] : init_regs) {
    RECODE_CHECK(r >= 0 && r < kNumRegisters);
    regs_[r] = v;
  }

  const Program& program = layout_->program();
  StateId state = program.entry();
  while (true) {
    const State& s = program.state(state);
    if (s.dispatch.kind == DispatchKind::kHalt) break;

    // Dispatch unit: obtain the symbol, then jump to base + symbol.
    std::uint32_t symbol = 0;
    switch (s.dispatch.kind) {
      case DispatchKind::kDirect:
        symbol = 0;
        break;
      case DispatchKind::kStreamBits:
        symbol = static_cast<std::uint32_t>(
            stream_bits(s.dispatch.bits, /*consume=*/true));
        break;
      case DispatchKind::kRegister:
        symbol = static_cast<std::uint32_t>(
            (regs_[s.dispatch.reg] >> s.dispatch.shift) & s.dispatch.mask);
        break;
      case DispatchKind::kRegisterBool:
        symbol = regs_[s.dispatch.reg] != 0 ? 1 : 0;
        break;
      case DispatchKind::kHalt:
        break;
    }

    const std::uint32_t addr = layout_->base(state) + symbol;
    const Slot& slot = layout_->slot(addr);
    if (!slot.valid || slot.owner != state) {
      fail("udp lane: invalid dispatch in state '" + s.name + "' symbol " +
           std::to_string(symbol));
    }

    ++counters_.transitions;
    std::uint64_t cycle_cost = 1;  // dispatch + first action
    const auto& actions = slot.arc->actions;
    for (std::size_t i = 0; i < actions.size(); ++i) {
      const std::uint64_t extra = execute(actions[i]);
      if (i > 0) ++cycle_cost;  // one action rides the dispatch cycle
      cycle_cost += extra;
    }
    counters_.cycles += cycle_cost;
    if (counters_.cycles > config_.max_cycles) {
      fail("udp lane: cycle budget exceeded (runaway program?)");
    }
    state = slot.arc->next;
  }

  // Faulted runs throw above and publish nothing; a half-run's counters
  // would skew the per-run averages the snapshot implies.
  if constexpr (telemetry::kEnabled) {
    LaneTelemetry& telem = LaneTelemetry::get();
    telem.runs.add(1);
    telem.cycles.add(counters_.cycles);
    telem.transitions.add(counters_.transitions);
    telem.actions.add(counters_.actions);
    telem.stream_bits.add(counters_.stream_bits_consumed);
    telem.scratch_read.add(counters_.scratch_bytes_read);
    telem.scratch_written.add(counters_.scratch_bytes_written);
  }
  return counters_;
}

}  // namespace recode::udp
