// 64-lane MIMD UDP accelerator model.
//
// Lanes are independent (MIMD) and blocks are independent decode jobs, so
// the accelerator-level model is a scheduling + time/energy account: jobs
// (per-block cycle counts measured on the Lane simulator) are placed on
// the least-loaded lane, makespan determines wall time at the 14 nm clock,
// and energy charges the paper's 0.16 W accelerator power for the busy
// interval.
//
// Performance/power envelope from §IV-A of the paper: 28 nm silicon ran
// at 1 GHz / 864 mW; the 14 nm + FinFET extrapolation used throughout the
// evaluation is 1.6 GHz / 160 mW per 64-lane accelerator.
#pragma once

#include <cstdint>
#include <vector>

#include "udp/lane.h"

namespace recode::udp {

struct AcceleratorConfig {
  int lanes = 64;
  double clock_hz = 1.6e9;     // 14 nm extrapolation (paper §IV-A)
  double power_watts = 0.16;   // per 64-lane accelerator
  LaneConfig lane;

  // Area model (paper §III-C): one 64-lane UDP is ~half an x86 core + L1,
  // <5% of a core with its L1/L2/L3 slice, ~1% of a 4-core Xeon die.
  static constexpr double kAreaVsXeonCoreL1 = 0.5;
  static constexpr double kAreaVsCoreAllCaches = 0.05;
};

class Accelerator {
 public:
  explicit Accelerator(AcceleratorConfig config = {});

  const AcceleratorConfig& config() const { return config_; }

  // Assigns a job of `cycles` to the least-loaded lane.
  void add_job(std::uint64_t cycles);

  void reset();

  std::size_t job_count() const { return jobs_; }

  // Longest lane occupancy — the accelerator's completion time in cycles.
  std::uint64_t makespan_cycles() const;

  // Sum of all lanes' busy cycles.
  std::uint64_t total_busy_cycles() const;

  // Wall-clock completion time at the configured clock.
  double seconds() const;

  // Average lane utilization over the makespan (1.0 = perfectly balanced).
  double utilization() const;

  // Energy at the configured accelerator power over the makespan.
  double energy_joules() const;

  // Aggregate throughput for `bytes` of output produced by the jobs.
  double throughput_bytes_per_sec(std::uint64_t bytes) const;

  // Mirrors the schedule into the process-wide telemetry registry:
  // per-lane busy cycles into the `udp.accel.lane_busy_cycles` histogram
  // and a StreamingStats summary of per-lane utilization (busy/makespan)
  // into the `udp.accel.*` gauges. Call after the last add_job(); a no-op
  // when RECODE_TELEMETRY=OFF.
  void publish_telemetry() const;

 private:
  AcceleratorConfig config_;
  std::vector<std::uint64_t> lane_cycles_;
  std::size_t jobs_ = 0;
};

}  // namespace recode::udp
