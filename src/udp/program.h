// UDP program container and builder.
//
// Programs are built state-by-state (the software analogue of UDP
// assembly), validated, and then packed into dispatch memory by the
// EffCLiP layout pass (effclip.h) before running on the lane simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "udp/isa.h"

namespace recode::udp {

class Program {
 public:
  // Adds a state; returns its id. Arcs may reference ids of states added
  // later (forward references are resolved at validate()).
  StateId add_state(std::string name, DispatchSpec dispatch);

  // Adds an arc to an existing state. `symbol` must be < fanout.
  void add_arc(StateId state, std::uint32_t symbol,
               std::vector<Action> actions, StateId next);

  // Adds the same actions/next for every symbol in [first, last].
  void add_arc_range(StateId state, std::uint32_t first, std::uint32_t last,
                     std::vector<Action> actions, StateId next);

  void set_entry(StateId s) { entry_ = s; }
  StateId entry() const { return entry_; }

  const std::vector<State>& states() const { return states_; }
  State& state(StateId id) { return states_[static_cast<std::size_t>(id)]; }
  const State& state(StateId id) const {
    return states_[static_cast<std::size_t>(id)];
  }
  std::size_t state_count() const { return states_.size(); }

  // Total arcs across all states (== dispatch memory slots needed).
  std::size_t arc_count() const;

  // Checks structural sanity: entry set, every arc's next exists, symbols
  // within fanout, no duplicate symbols, halt states have no arcs, and
  // every register index is in range. Throws recode::Error on violation.
  void validate() const;

 private:
  std::vector<State> states_;
  StateId entry_ = -1;
};

}  // namespace recode::udp
