#include "udp/program.h"

#include <set>

#include "common/error.h"

namespace recode::udp {

StateId Program::add_state(std::string name, DispatchSpec dispatch) {
  State s;
  s.name = std::move(name);
  s.dispatch = dispatch;
  states_.push_back(std::move(s));
  return static_cast<StateId>(states_.size() - 1);
}

void Program::add_arc(StateId state, std::uint32_t symbol,
                      std::vector<Action> actions, StateId next) {
  RECODE_CHECK(state >= 0 &&
               static_cast<std::size_t>(state) < states_.size());
  Arc arc;
  arc.symbol = symbol;
  arc.actions = std::move(actions);
  arc.next = next;
  states_[static_cast<std::size_t>(state)].arcs.push_back(std::move(arc));
}

void Program::add_arc_range(StateId state, std::uint32_t first,
                            std::uint32_t last, std::vector<Action> actions,
                            StateId next) {
  RECODE_CHECK(first <= last);
  for (std::uint32_t s = first; s <= last; ++s) {
    add_arc(state, s, actions, next);
  }
}

std::size_t Program::arc_count() const {
  std::size_t n = 0;
  for (const auto& s : states_) n += s.arcs.size();
  return n;
}

namespace {

void check_operand(const Operand& o) {
  if (!o.is_imm && (o.reg < 0 || o.reg >= kNumRegisters)) {
    fail("udp program: register operand out of range");
  }
}

void check_action(const Action& a) {
  if (a.dst < 0 || a.dst >= kNumRegisters) {
    fail("udp program: destination register out of range");
  }
  check_operand(a.a);
  check_operand(a.b);
  switch (a.op) {
    case Op::kLoadLe:
    case Op::kStoreLe:
    case Op::kStreamReadLe:
      if (a.width != 1 && a.width != 2 && a.width != 4 && a.width != 8) {
        fail("udp program: bad memory width");
      }
      break;
    default:
      break;
  }
}

}  // namespace

void Program::validate() const {
  if (entry_ < 0 || static_cast<std::size_t>(entry_) >= states_.size()) {
    fail("udp program: entry state not set");
  }
  for (const auto& s : states_) {
    const std::size_t fanout = s.dispatch.fanout();
    if (s.dispatch.kind == DispatchKind::kHalt) {
      if (!s.arcs.empty()) fail("udp program: halt state has arcs");
      continue;
    }
    if (s.arcs.empty()) {
      fail("udp program: non-halt state '" + s.name + "' has no arcs");
    }
    std::set<std::uint32_t> seen;
    for (const auto& arc : s.arcs) {
      if (arc.symbol >= fanout) {
        fail("udp program: symbol out of dispatch range in '" + s.name + "'");
      }
      if (!seen.insert(arc.symbol).second) {
        fail("udp program: duplicate symbol in state '" + s.name + "'");
      }
      if (arc.next < 0 ||
          static_cast<std::size_t>(arc.next) >= states_.size()) {
        fail("udp program: arc to unknown state from '" + s.name + "'");
      }
      for (const auto& action : arc.actions) check_action(action);
    }
    if (s.dispatch.kind == DispatchKind::kRegister) {
      // Mask must be a low bit mask so base+symbol stays dense.
      const std::uint64_t m = s.dispatch.mask;
      if (m == 0 || (m & (m + 1)) != 0) {
        fail("udp program: register dispatch mask must be 2^k - 1");
      }
      if (s.dispatch.reg < 0 || s.dispatch.reg >= kNumRegisters) {
        fail("udp program: dispatch register out of range");
      }
    }
    if (s.dispatch.kind == DispatchKind::kRegisterBool &&
        (s.dispatch.reg < 0 || s.dispatch.reg >= kNumRegisters)) {
      fail("udp program: dispatch register out of range");
    }
  }
}

}  // namespace recode::udp
