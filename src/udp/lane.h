// Single UDP lane cycle simulator.
//
// Models the three-unit lane of §III-E: the Dispatch unit (one multi-way
// dispatch per cycle against the EffCLiP-packed table), the Symbol/Stream
// Prefetch unit (variable-size symbol fetch; prefetching hides stream
// latency, so stream access adds no cycles), and the Action unit
// (single-issue ALU + scratchpad). Timing model:
//
//   * every transition costs 1 cycle (dispatch + first action execute in
//     the short pipeline's steady state),
//   * each action beyond the first adds 1 cycle,
//   * block copies move 8 B/cycle through the scratchpad port, falling to
//     1 B/cycle for overlapping copies with distance < 8 (RLE-style),
//     charged as extra cycles on the copy action.
//
// The clock (1.6 GHz) and power (0.16 W per 64-lane accelerator) are the
// paper's 14 nm numbers; see accelerator.h.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "udp/effclip.h"

namespace recode::udp {

struct LaneConfig {
  std::size_t scratchpad_bytes = kDefaultScratchpadBytes;
  std::uint64_t max_cycles = 1ull << 32;  // runaway-program guard
};

struct LaneCounters {
  std::uint64_t cycles = 0;
  std::uint64_t transitions = 0;
  std::uint64_t actions = 0;
  std::uint64_t stream_bits_consumed = 0;
  std::uint64_t scratch_bytes_read = 0;
  std::uint64_t scratch_bytes_written = 0;
};

class Lane {
 public:
  explicit Lane(const Layout& layout, LaneConfig config = {});

  // Executes the program from its entry state until a halt state.
  // The scratchpad is zeroed first; `init_regs` seeds the register file
  // (registers not listed start at 0). Throws recode::Error on invalid
  // dispatch, stream/scratch overrun, or exceeding max_cycles.
  const LaneCounters& run(
      std::span<const std::uint8_t> input,
      std::span<const std::pair<int, std::uint64_t>> init_regs = {});

  const LaneCounters& counters() const { return counters_; }
  std::span<const std::uint8_t> scratch() const { return scratch_; }
  std::uint64_t reg(int r) const;

 private:
  // Stream (Symbol Prefetch unit) helpers.
  std::uint64_t stream_bits(int nbits, bool consume);
  void stream_skip(std::uint64_t nbits);
  void stream_rewind(std::uint64_t nbits);
  std::uint64_t stream_read_le(int width);
  void stream_copy_to_scratch(std::uint64_t dst, std::uint64_t nbytes);

  std::uint64_t operand(const Operand& o) const;
  // Executes one action; returns extra cycles beyond the base action slot.
  std::uint64_t execute(const Action& a);

  void scratch_check(std::uint64_t addr, std::uint64_t len) const;

  const Layout* layout_;
  LaneConfig config_;
  LaneCounters counters_;
  std::vector<std::uint8_t> scratch_;
  std::uint64_t regs_[kNumRegisters] = {};

  std::span<const std::uint8_t> input_;
  std::uint64_t bit_pos_ = 0;  // stream cursor in bits
};

}  // namespace recode::udp
