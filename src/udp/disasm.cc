#include "udp/disasm.h"

#include <algorithm>
#include <cstdio>

namespace recode::udp {

namespace {

std::string operand(const Operand& o) {
  if (!o.is_imm) return "r" + std::to_string(o.reg);
  char buf[24];
  if (o.imm > 0xFFFF) {
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(o.imm));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(o.imm));
  }
  return buf;
}

}  // namespace

std::string format_action(const Action& a) {
  const std::string dst = "r" + std::to_string(a.dst);
  switch (a.op) {
    case Op::kSetImm:
      return "set " + dst + ", " + operand(a.a);
    case Op::kMove:
      return "mov " + dst + ", " + operand(a.a);
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kSar:
    case Op::kMul:
      return std::string(op_name(a.op)) + " " + dst + ", " + operand(a.a) +
             ", " + operand(a.b);
    case Op::kNot:
      return "not " + dst + ", " + operand(a.a);
    case Op::kLoadLe:
      return "ldle" + std::to_string(a.width) + " " + dst + ", [" +
             operand(a.a) + "+" + std::to_string(a.b.imm) + "]";
    case Op::kStoreLe:
      return "stle" + std::to_string(a.width) + " [" + operand(a.a) + "+" +
             std::to_string(a.b.imm) + "], " + dst;
    case Op::kStreamReadBits:
      return "srdb " + dst + ", " + operand(a.b);
    case Op::kStreamPeekBits:
      return "spkb " + dst + ", " + operand(a.b);
    case Op::kStreamSkipBits:
      return "sskb " + operand(a.b);
    case Op::kStreamRewindBits:
      return "srwb " + operand(a.b);
    case Op::kStreamReadLe:
      return "srdl" + std::to_string(a.width) + " " + dst;
    case Op::kStreamCopy:
      return "scpy [" + operand(a.a) + "], " + operand(a.b);
    case Op::kScratchCopy:
      return "mcpy [" + dst + "], [" + operand(a.a) + "], " + operand(a.b);
  }
  return "?";
}

std::string format_dispatch(const DispatchSpec& d) {
  switch (d.kind) {
    case DispatchKind::kDirect:
      return "dispatch direct";
    case DispatchKind::kStreamBits:
      return "dispatch stream[" + std::to_string(d.bits) + "]";
    case DispatchKind::kRegister: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "dispatch (r%d >> %d) & 0x%llx", d.reg,
                    d.shift, static_cast<unsigned long long>(d.mask));
      return buf;
    }
    case DispatchKind::kRegisterBool:
      return "dispatch r" + std::to_string(d.reg) + " != 0";
    case DispatchKind::kHalt:
      return "halt";
  }
  return "?";
}

std::string disassemble(const Program& program) {
  std::string out;
  for (std::size_t sid = 0; sid < program.state_count(); ++sid) {
    const State& s = program.state(static_cast<StateId>(sid));
    out += s.name + ":  ; " + format_dispatch(s.dispatch) + "\n";
    // Collapse runs of arcs with identical actions/targets (Huffman and
    // Snappy tag tables would otherwise print hundreds of identical rows).
    for (std::size_t i = 0; i < s.arcs.size();) {
      std::size_t j = i + 1;
      auto same = [&](const Arc& a, const Arc& b) {
        if (a.next != b.next || a.actions.size() != b.actions.size()) {
          return false;
        }
        for (std::size_t k = 0; k < a.actions.size(); ++k) {
          if (format_action(a.actions[k]) != format_action(b.actions[k])) {
            return false;
          }
        }
        return true;
      };
      while (j < s.arcs.size() && s.arcs[j].symbol == s.arcs[j - 1].symbol + 1 &&
             same(s.arcs[i], s.arcs[j])) {
        ++j;
      }
      char sym[32];
      if (j - i > 1) {
        std::snprintf(sym, sizeof(sym), "  [%u..%u]", s.arcs[i].symbol,
                      s.arcs[j - 1].symbol);
      } else {
        std::snprintf(sym, sizeof(sym), "  [%u]", s.arcs[i].symbol);
      }
      out += sym;
      out += ":";
      for (const Action& a : s.arcs[i].actions) {
        out += " " + format_action(a) + ";";
      }
      out += " -> " + program.state(s.arcs[i].next).name + "\n";
      i = j;
    }
  }
  return out;
}

ProgramSummary summarize(const Layout& layout) {
  const Program& p = layout.program();
  ProgramSummary s;
  s.states = p.state_count();
  s.arcs = p.arc_count();
  s.table_slots = layout.table_size();
  s.density = layout.density();
  for (std::size_t sid = 0; sid < p.state_count(); ++sid) {
    const State& st = p.state(static_cast<StateId>(sid));
    s.max_fanout = std::max(s.max_fanout, st.dispatch.fanout());
    for (const Arc& a : st.arcs) s.actions += a.actions.size();
  }
  return s;
}

std::string format_summary(const std::string& name,
                           const ProgramSummary& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%-22s states=%-4zu arcs=%-5zu actions=%-5zu slots=%-5zu "
                "density=%.3f max-fanout=%zu",
                name.c_str(), s.states, s.arcs, s.actions, s.table_slots,
                s.density, s.max_fanout);
  return buf;
}

}  // namespace recode::udp
