#include "udp/accelerator.h"

#include <algorithm>

#include "common/error.h"
#include "common/stats.h"
#include "telemetry/telemetry.h"

namespace recode::udp {

namespace {

struct AccelTelemetry {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& jobs = reg.counter("udp.accel.jobs");
  telemetry::Histogram& job_cycles = reg.histogram("udp.accel.job_cycles");

  static AccelTelemetry& get() {
    static AccelTelemetry* t = new AccelTelemetry();
    return *t;
  }
};

}  // namespace

Accelerator::Accelerator(AcceleratorConfig config) : config_(config) {
  RECODE_CHECK(config_.lanes > 0);
  RECODE_CHECK(config_.clock_hz > 0);
  lane_cycles_.assign(static_cast<std::size_t>(config_.lanes), 0);
}

void Accelerator::add_job(std::uint64_t cycles) {
  auto it = std::min_element(lane_cycles_.begin(), lane_cycles_.end());
  *it += cycles;
  ++jobs_;
  if constexpr (telemetry::kEnabled) {
    AccelTelemetry& telem = AccelTelemetry::get();
    telem.jobs.add(1);
    telem.job_cycles.observe(static_cast<double>(cycles));
  }
}

void Accelerator::reset() {
  std::fill(lane_cycles_.begin(), lane_cycles_.end(), 0);
  jobs_ = 0;
}

std::uint64_t Accelerator::makespan_cycles() const {
  return *std::max_element(lane_cycles_.begin(), lane_cycles_.end());
}

std::uint64_t Accelerator::total_busy_cycles() const {
  std::uint64_t total = 0;
  for (auto c : lane_cycles_) total += c;
  return total;
}

double Accelerator::seconds() const {
  return static_cast<double>(makespan_cycles()) / config_.clock_hz;
}

double Accelerator::utilization() const {
  const std::uint64_t makespan = makespan_cycles();
  if (makespan == 0) return 1.0;
  return static_cast<double>(total_busy_cycles()) /
         (static_cast<double>(makespan) *
          static_cast<double>(config_.lanes));
}

double Accelerator::energy_joules() const {
  return seconds() * config_.power_watts;
}

double Accelerator::throughput_bytes_per_sec(std::uint64_t bytes) const {
  const double s = seconds();
  return s == 0.0 ? 0.0 : static_cast<double>(bytes) / s;
}

void Accelerator::publish_telemetry() const {
  if constexpr (!telemetry::kEnabled) return;
  auto& reg = telemetry::MetricsRegistry::global();
  auto& lane_busy = reg.histogram("udp.accel.lane_busy_cycles");
  const std::uint64_t makespan = makespan_cycles();
  StreamingStats lane_util;
  for (const std::uint64_t cycles : lane_cycles_) {
    lane_busy.observe(static_cast<double>(cycles));
    // An empty schedule counts every lane as perfectly utilized, matching
    // utilization()'s convention.
    lane_util.add(makespan == 0 ? 1.0
                                : static_cast<double>(cycles) /
                                      static_cast<double>(makespan));
  }
  reg.gauge("udp.accel.utilization").set(utilization());
  reg.gauge("udp.accel.lane_utilization_min").set(lane_util.min());
  reg.gauge("udp.accel.lane_utilization_max").set(lane_util.max());
  reg.gauge("udp.accel.lane_utilization_mean").set(lane_util.mean());
  reg.gauge("udp.accel.makespan_cycles")
      .set(static_cast<double>(makespan));
  reg.gauge("udp.accel.busy_cycles_total")
      .set(static_cast<double>(total_busy_cycles()));
}

}  // namespace recode::udp
