#include "udp/accelerator.h"

#include <algorithm>

#include "common/error.h"

namespace recode::udp {

Accelerator::Accelerator(AcceleratorConfig config) : config_(config) {
  RECODE_CHECK(config_.lanes > 0);
  RECODE_CHECK(config_.clock_hz > 0);
  lane_cycles_.assign(static_cast<std::size_t>(config_.lanes), 0);
}

void Accelerator::add_job(std::uint64_t cycles) {
  auto it = std::min_element(lane_cycles_.begin(), lane_cycles_.end());
  *it += cycles;
  ++jobs_;
}

void Accelerator::reset() {
  std::fill(lane_cycles_.begin(), lane_cycles_.end(), 0);
  jobs_ = 0;
}

std::uint64_t Accelerator::makespan_cycles() const {
  return *std::max_element(lane_cycles_.begin(), lane_cycles_.end());
}

std::uint64_t Accelerator::total_busy_cycles() const {
  std::uint64_t total = 0;
  for (auto c : lane_cycles_) total += c;
  return total;
}

double Accelerator::seconds() const {
  return static_cast<double>(makespan_cycles()) / config_.clock_hz;
}

double Accelerator::utilization() const {
  const std::uint64_t makespan = makespan_cycles();
  if (makespan == 0) return 1.0;
  return static_cast<double>(total_busy_cycles()) /
         (static_cast<double>(makespan) *
          static_cast<double>(config_.lanes));
}

double Accelerator::energy_joules() const {
  return seconds() * config_.power_watts;
}

double Accelerator::throughput_bytes_per_sec(std::uint64_t bytes) const {
  const double s = seconds();
  return s == 0.0 ? 0.0 : static_cast<double>(bytes) / s;
}

}  // namespace recode::udp
