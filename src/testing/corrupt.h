// Deterministic corruption engine for decode-robustness testing.
//
// The UDP sits in the memory path: a malformed or truncated compressed
// block must never crash or corrupt the consumer (ROADMAP north star,
// DESIGN.md). This engine produces seeded, reproducible corruptions of a
// clean encoded stream — the adversarial inputs the robustness suites in
// tests/robustness/ feed to every codec stage and UDP decoder.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/codec.h"
#include "common/prng.h"

namespace recode::testing {

// The corruption model. Each kind targets a failure mode real storage or
// transport faults produce:
//   kTruncate     — stream cut short at a random point (partial DMA, EOF)
//   kBitFlip      — single flipped bit (memory/link error)
//   kMultiBitFlip — burst of 2..16 flipped bits (burst error)
//   kLengthTamper — leading varint length field rewritten (header attack)
//   kSplice       — prefix of one stream glued to the suffix of another
//                   (torn write / misdirected block)
enum class CorruptionKind {
  kTruncate,
  kBitFlip,
  kMultiBitFlip,
  kLengthTamper,
  kSplice,
};

inline constexpr CorruptionKind kAllCorruptionKinds[] = {
    CorruptionKind::kTruncate,     CorruptionKind::kBitFlip,
    CorruptionKind::kMultiBitFlip, CorruptionKind::kLengthTamper,
    CorruptionKind::kSplice,
};

const char* corruption_name(CorruptionKind kind);

// Stateful engine: successive calls draw fresh corruption sites from the
// seeded PRNG, so one engine yields a deterministic family of variants.
class CorruptionEngine {
 public:
  explicit CorruptionEngine(std::uint64_t seed) : prng_(seed) {}

  // Drops a random non-empty tail (empty input comes back empty).
  codec::Bytes truncate(codec::ByteSpan in);

  // Flips `flips` random bits (distinct positions not required).
  codec::Bytes bit_flip(codec::ByteSpan in, int flips);

  // Rewrites the leading LEB128 varint — the length preamble of the
  // Snappy/Huffman framings — with an adversarial value: huge, zero, or
  // randomly scaled. Streams without a leading varint just get a
  // corrupted head, which is equally interesting.
  codec::Bytes tamper_length(codec::ByteSpan in);

  // Prefix of `a` + suffix of `b` at independent random split points.
  codec::Bytes splice(codec::ByteSpan a, codec::ByteSpan b);

  // Dispatches on `kind`; `other` is the second stream for kSplice (use
  // the clean stream itself when no sibling stream exists).
  codec::Bytes apply(CorruptionKind kind, codec::ByteSpan in,
                     codec::ByteSpan other);

 private:
  Prng prng_;
};

// `per_kind` variants of every corruption kind applied to `clean`,
// deterministic in `seed`. `other` feeds the splice kind.
std::vector<codec::Bytes> corruption_variants(codec::ByteSpan clean,
                                              codec::ByteSpan other,
                                              std::uint64_t seed,
                                              int per_kind);

}  // namespace recode::testing
