#include "testing/corrupt.h"

#include "common/varint.h"

namespace recode::testing {

using codec::Bytes;
using codec::ByteSpan;

const char* corruption_name(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kTruncate: return "truncate";
    case CorruptionKind::kBitFlip: return "bit-flip";
    case CorruptionKind::kMultiBitFlip: return "multi-bit-flip";
    case CorruptionKind::kLengthTamper: return "length-tamper";
    case CorruptionKind::kSplice: return "splice";
  }
  return "?";
}

Bytes CorruptionEngine::truncate(ByteSpan in) {
  if (in.empty()) return {};
  // Keep [0, size) bytes; dropping everything is a valid truncation too.
  const std::size_t keep = prng_.next_below(in.size());
  return Bytes(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(keep));
}

Bytes CorruptionEngine::bit_flip(ByteSpan in, int flips) {
  Bytes out(in.begin(), in.end());
  if (out.empty()) return out;
  for (int i = 0; i < flips; ++i) {
    const std::size_t byte = prng_.next_below(out.size());
    out[byte] ^= static_cast<std::uint8_t>(1u << prng_.next_below(8));
  }
  return out;
}

Bytes CorruptionEngine::tamper_length(ByteSpan in) {
  // Parse the leading varint so the replacement splices cleanly into the
  // stream; fall back to head corruption when there is none.
  std::size_t head = 0;
  bool valid = false;
  while (head < in.size() && head < 10) {
    if ((in[head++] & 0x80) == 0) {
      valid = true;
      break;
    }
  }
  if (!valid) return bit_flip(in, 3);

  std::uint64_t tampered = 0;
  switch (prng_.next_below(4)) {
    case 0: tampered = UINT64_MAX; break;                  // absurdly huge
    case 1: tampered = 0; break;                           // claims empty
    case 2: tampered = prng_.next(); break;                // random 64-bit
    default:                                               // off-by-a-lot
      tampered = prng_.next_below(1u << 20) + 1;
      break;
  }
  Bytes out;
  varint_append(out, tampered);
  out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(head),
             in.end());
  return out;
}

Bytes CorruptionEngine::splice(ByteSpan a, ByteSpan b) {
  const std::size_t cut_a = a.empty() ? 0 : prng_.next_below(a.size() + 1);
  const std::size_t cut_b = b.empty() ? 0 : prng_.next_below(b.size() + 1);
  Bytes out(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(cut_a));
  out.insert(out.end(), b.begin() + static_cast<std::ptrdiff_t>(cut_b),
             b.end());
  return out;
}

Bytes CorruptionEngine::apply(CorruptionKind kind, ByteSpan in,
                              ByteSpan other) {
  switch (kind) {
    case CorruptionKind::kTruncate: return truncate(in);
    case CorruptionKind::kBitFlip: return bit_flip(in, 1);
    case CorruptionKind::kMultiBitFlip:
      return bit_flip(in, 2 + static_cast<int>(prng_.next_below(15)));
    case CorruptionKind::kLengthTamper: return tamper_length(in);
    case CorruptionKind::kSplice: return splice(in, other);
  }
  return Bytes(in.begin(), in.end());
}

std::vector<Bytes> corruption_variants(ByteSpan clean, ByteSpan other,
                                       std::uint64_t seed, int per_kind) {
  CorruptionEngine engine(seed);
  std::vector<Bytes> variants;
  variants.reserve(static_cast<std::size_t>(per_kind) *
                   std::size(kAllCorruptionKinds));
  for (const CorruptionKind kind : kAllCorruptionKinds) {
    for (int i = 0; i < per_kind; ++i) {
      variants.push_back(engine.apply(kind, clean, other));
    }
  }
  return variants;
}

}  // namespace recode::testing
