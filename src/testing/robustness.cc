#include "testing/robustness.h"

#include <typeinfo>

#include "common/error.h"

namespace recode::testing {

std::string RobustnessReport::summary() const {
  return std::to_string(total) + " corrupt variants: " +
         std::to_string(decoded) + " decoded, " + std::to_string(rejected) +
         " rejected, " + std::to_string(violations.size()) + " violations";
}

namespace {

// Runs one decode attempt and classifies it against the contract.
void run_variant(const DecodeFn& decode, codec::ByteSpan input,
                 const std::string& label, bool corrupt,
                 RobustnessReport& report) {
  try {
    decode(input);
    if (corrupt) ++report.decoded;
  } catch (const Error& e) {
    if (corrupt) {
      ++report.rejected;
    } else {
      report.violations.push_back(label + ": clean input rejected: " +
                                  e.what());
    }
  } catch (const std::exception& e) {
    report.violations.push_back(label + ": wrong exception type " +
                                typeid(e).name() + ": " + e.what());
  } catch (...) {
    report.violations.push_back(label + ": non-standard exception");
  }
}

}  // namespace

RobustnessReport check_decode_robustness(const DecodeFn& decode,
                                         codec::ByteSpan clean,
                                         codec::ByteSpan sibling,
                                         std::uint64_t seed, int per_kind) {
  RobustnessReport report;
  run_variant(decode, clean, "clean", /*corrupt=*/false, report);

  CorruptionEngine engine(seed);
  for (const CorruptionKind kind : kAllCorruptionKinds) {
    for (int i = 0; i < per_kind; ++i) {
      const codec::Bytes variant = engine.apply(kind, clean, sibling);
      ++report.total;
      run_variant(decode, variant,
                  std::string(corruption_name(kind)) + " #" +
                      std::to_string(i) + " seed " + std::to_string(seed),
                  /*corrupt=*/true, report);
    }
  }
  return report;
}

}  // namespace recode::testing
