// Decode-robustness harness.
//
// Enforces the decode contract shared by every host codec and UDP decoder
// in the recode pipeline:
//   * clean input decodes successfully (and round-trips, where the caller
//     checks bytes);
//   * corrupt input either decodes (garbage out is acceptable — e.g. a
//     bit flip inside a literal run) or throws recode::Error;
//   * nothing else: no aborts, no std::bad_alloc from attacker-sized
//     allocations, no out-of-bounds access (the latter enforced by
//     running the suite under the `sanitize` build, see README).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "testing/corrupt.h"

namespace recode::testing {

// Adapter over any decoder under test. Implementations should decode the
// bytes and discard the result; throwing recode::Error signals rejection.
using DecodeFn = std::function<void(codec::ByteSpan)>;

struct RobustnessReport {
  int total = 0;     // corrupted variants fed to the decoder
  int decoded = 0;   // decoded without error (acceptable)
  int rejected = 0;  // threw recode::Error (acceptable)
  // Contract violations: wrong exception type on corrupt input, or any
  // exception at all on the clean input. Empty means the decoder honours
  // the contract on this input family.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

// Feeds `decode` the clean stream, then `per_kind` seeded variants of
// every corruption kind (sibling feeds the splice kind; pass `clean`
// again when no second stream exists).
RobustnessReport check_decode_robustness(const DecodeFn& decode,
                                         codec::ByteSpan clean,
                                         codec::ByteSpan sibling,
                                         std::uint64_t seed, int per_kind);

}  // namespace recode::testing
