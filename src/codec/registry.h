// Registry of named per-block codecs — the per-block adaptive frontier.
//
// Copernicus-style measurements show the compression-format win/loss
// flips with *block* structure, not matrix structure: a banded matrix
// still carries scattered fill-in blocks and a power-law graph still has
// dense diagonal runs. Because the UDP is programmable, switching the
// encoding per block costs one dispatch byte, not a hardware change —
// the paper's "encoding as a free variable" thesis taken to block
// granularity.
//
// Every combination of
//   * index transform   (none / fixed-width delta / varint-delta)
//   * value transform   (none / delta / varint-delta / byte-transpose)
//   * entropy stages    (Snappy on/off, Huffman on/off)
// gets a stable one-byte CodecId, recorded per block in the container v2
// layout (container.h) and dispatched on by every decode engine: the
// reference pipeline, the fast arena path, and the UDP BlockDecoder.
// Unknown ids (reserved bits, out-of-range fields) throw recode::Error
// from every engine with the same message — hostile containers must
// never abort or silently mis-decode.
//
// The id is a packed field code rather than a dense enumeration so that
// it is stable by construction: new transforms extend a field instead of
// renumbering the table.
//
//   bits 0-1  index transform (0 none, 1 delta32, 2 varint-delta)
//   bits 2-3  value transform (0 none, 1 delta32, 2 varint-delta,
//                              3 byte-transpose)
//   bit  4    snappy
//   bit  5    huffman
//   bits 6-7  reserved, must be zero
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codec/pipeline.h"

namespace recode::codec {

// One block codec: the stage chain a single block's two streams run
// through. The entropy stages apply to both streams; the transforms are
// per stream.
struct BlockCodec {
  Transform index_transform = Transform::kDelta32;
  Transform value_transform = Transform::kNone;
  bool snappy = true;
  bool huffman = true;

  bool operator==(const BlockCodec&) const = default;
};

// Packs a BlockCodec into its stable id. Total function: every
// representable BlockCodec has an id.
CodecId codec_id(const BlockCodec& c);

// Unpacks an id. Throws recode::Error on reserved bits or out-of-range
// field values — the single "unknown codec id" gate every decode engine
// shares.
BlockCodec codec_from_id(CodecId id);

// True when codec_from_id would succeed.
bool codec_id_valid(CodecId id);

// Stable human-readable name, e.g. "i:d32.v:bt+s+h" (used as the
// telemetry key suffix and in bench output).
std::string codec_name(CodecId id);

// The uniform id a single-pipeline config implies for every block.
CodecId codec_id_for(const PipelineConfig& cfg);

// Trial-encode candidate set for a matrix-level config, baseline id
// first. Entropy combinations never exceed the config's stages (a
// huffman candidate requires cfg.huffman so the trained tables exist);
// a stored (no-stage) fallback is always included so incompressible
// blocks cost raw size, never more.
std::vector<CodecId> candidate_codecs(const PipelineConfig& cfg);

// Looks up block b's codec and validates it against the matrix: unknown
// ids and huffman blocks without trained tables throw recode::Error.
// Every decode engine routes through this before touching the streams.
BlockCodec block_codec_checked(const CompressedMatrix& cm, std::size_t b);

// The byte-transposition value transform (Transform::kByteTranspose):
// treats the buffer as size/8 8-byte records (doubles) and regroups it
// plane-major — all byte-0s, then all byte-1s, ... — so the
// low-entropy sign/exponent planes of real-valued data form long runs
// Snappy and Huffman exploit. Any trailing size%8 bytes are appended
// verbatim. A pure permutation: always invertible, no error cases.
Bytes byte_transpose(ByteSpan raw);
Bytes byte_untranspose(ByteSpan encoded);

// Encodes one block's streams under codec `c`. The tables may be null
// when !c.huffman. `after_snappy` (nullable, 2 elements: index, value)
// receives the per-stream sizes before the Huffman stage, for the
// StageSizes accounting.
CompressedBlock encode_block(std::span<const sparse::index_t> indices,
                             std::span<const double> values,
                             const BlockCodec& c,
                             const HuffmanTable* index_table,
                             const HuffmanTable* value_table,
                             std::size_t* after_snappy = nullptr);

}  // namespace recode::codec
