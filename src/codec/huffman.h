// Canonical Huffman codec over bytes with externally-trained tables.
//
// The paper trains one Huffman tree per matrix by sampling up to 40% of
// its 8 KB blocks (§IV-B), then encodes every block with that shared tree.
// HuffmanTable captures that: build it from a histogram of sampled data,
// serialize it once per matrix, and use stateless encode/decode per block.
//
// Codes are canonical with lengths capped at kMaxCodeLen (15), so the
// table serializes as 256 4-bit lengths (128 bytes) and decode can use a
// flat 2^15-entry lookup table — the same structure the UDP program's
// multi-way dispatch exploits.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "codec/codec.h"

namespace recode::codec {

inline constexpr int kMaxCodeLen = 15;

class HuffmanTable {
 public:
  // Uniform-code table (all lengths 8): a valid fallback when no training
  // data is available.
  HuffmanTable();

  // Builds length-limited canonical codes from byte frequencies.
  // Zero-frequency symbols are smoothed to frequency 1 so blocks outside
  // the training sample always remain encodable.
  static HuffmanTable build(const std::array<std::uint64_t, 256>& histogram);

  // Histogram over a sample buffer, then build().
  static HuffmanTable train(ByteSpan sample);

  // 128-byte serialization (256 packed 4-bit code lengths).
  Bytes serialize() const;
  static HuffmanTable deserialize(ByteSpan data);

  std::uint16_t code(std::uint8_t symbol) const { return codes_[symbol]; }
  std::uint8_t length(std::uint8_t symbol) const { return lengths_[symbol]; }

  // Average code length in bits under the given histogram (for tests and
  // the sampling ablation).
  double expected_bits(const std::array<std::uint64_t, 256>& histogram) const;

  // Flat decode table: index = next 15 bits of the stream (MSB-aligned),
  // value = {symbol, code length}.
  struct DecodeEntry {
    std::uint8_t symbol;
    std::uint8_t length;
  };
  const DecodeEntry* decode_table() const { return decode_.data(); }

  // Multi-symbol decode table (the fast path's one-lookup-many-symbols
  // step): index = next kMaxCodeLen bits, value = every symbol whose full
  // code is contained in those bits, up to 4. At least one symbol is
  // always present (no code is longer than the window), so the fast
  // decoder needs no fallback lookup while >= kMaxCodeLen bits remain.
  // Decoding the entries in sequence is bit-for-bit identical to repeated
  // single-symbol lookups: symbol k+1 is only packed when its whole code
  // fits in the window bits left after symbols 1..k, i.e. when it is
  // fully determined by real stream bits.
  struct MultiEntry {
    std::uint8_t symbols[4];  // valid: [0, count); rest zero (slop-safe)
    std::uint8_t count;       // 1..4 symbols decoded by this window
    std::uint8_t bits;        // total code bits those symbols consume
  };
  const MultiEntry* multi_table() const { return multi_.data(); }

  bool operator==(const HuffmanTable& other) const {
    return lengths_ == other.lengths_;
  }

 private:
  void assign_canonical_codes();
  void build_decode_table();

  std::array<std::uint8_t, 256> lengths_{};
  std::array<std::uint16_t, 256> codes_{};
  std::array<DecodeEntry, 1u << kMaxCodeLen> decode_{};
  std::array<MultiEntry, 1u << kMaxCodeLen> multi_{};
};

// Stateless Huffman codec bound to a shared table. The encoded stream is:
// varint(decoded_byte_count) followed by the MSB-first bit stream.
//
// decode() is the scalar reference implementation (one symbol per table
// lookup, byte-wise refill); the production hot path is
// fast::huffman_decode (fast_decode.h), which must stay bitwise-identical
// to it — the fast-decode differential suite enforces that.
class HuffmanCodec final : public Codec {
 public:
  explicit HuffmanCodec(std::shared_ptr<const HuffmanTable> table)
      : table_(std::move(table)) {}

  std::string name() const override { return "huffman"; }
  Bytes encode(ByteSpan input) const override;
  Bytes decode(ByteSpan input) const override;

  // Decoded byte count announced by the preamble without decoding.
  static std::size_t decoded_length(ByteSpan input);

  const HuffmanTable& table() const { return *table_; }

 private:
  std::shared_ptr<const HuffmanTable> table_;
};

}  // namespace recode::codec
