// Byte-stream codec interface.
//
// All recoding stages (delta, Snappy, Huffman) operate on byte buffers so
// they can be composed into the paper's Delta->Snappy->Huffman pipeline and
// mirrored 1:1 by the UDP programs in src/udpprog.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace recode::codec {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

// Stateless codec over byte buffers. Implementations throw recode::Error
// on malformed input to decode().
class Codec {
 public:
  virtual ~Codec() = default;
  virtual std::string name() const = 0;
  virtual Bytes encode(ByteSpan input) const = 0;
  virtual Bytes decode(ByteSpan input) const = 0;
};

}  // namespace recode::codec
