// Varint-delta index transform — a "customized encoding on top of CSR"
// of the kind the paper's future work proposes (§VII) and the UDP's
// variable-size-symbol support exists for (§III-E).
//
// Column indices are zigzag first-differences like DeltaCodec, but
// emitted as LEB128 varints instead of fixed 32-bit words: banded and
// FEM matrices whose deltas fit 7 bits shrink ~4x *before* Snappy ever
// runs. Unlike the fixed-width delta, this transform changes the stream
// size by itself — the programmable-recoding win the paper argues no
// hard-wired CPU format gives you.
#pragma once

#include "codec/codec.h"

namespace recode::codec {

class VarintDeltaCodec final : public Codec {
 public:
  std::string name() const override { return "varint-delta32"; }

  // input.size() must be a multiple of 4 (LE32 words). Output: one LEB128
  // varint per word holding zigzag(word[i] - word[i-1]) (mod 2^32).
  Bytes encode(ByteSpan input) const override;

  // Decodes until the input is exhausted; output is LE32 words. Throws on
  // truncated or overlong varints.
  Bytes decode(ByteSpan input) const override;
};

}  // namespace recode::codec
