#include "codec/pipeline.h"

#include <algorithm>
#include <cstring>

#include "codec/arena.h"
#include "codec/delta.h"
#include "codec/fast_decode.h"
#include "codec/registry.h"
#include "codec/selector.h"
#include "codec/snappy.h"
#include "codec/varint_delta.h"
#include "common/error.h"
#include "common/prng.h"
#include "common/varint.h"
#include "sparse/stats.h"
#include "telemetry/telemetry.h"

namespace recode::codec {

namespace {

// Per-stage decode/encode attribution: bytes in/out and nanoseconds per
// Delta/Snappy/Huffman stage, the measured counterpart of the StageSizes
// compile-time accounting (gives measured B/nnz and time per stage).
struct StageMetrics {
  telemetry::Counter& ns;
  telemetry::Counter& bytes_in;
  telemetry::Counter& bytes_out;
  // Decode-path attribution: streams decoded by the word-wise fast
  // decoders vs the scalar references (always zero for encode stages, and
  // for the transform stage when the transform is kNone — no decode work).
  telemetry::Counter& fast_streams;
  telemetry::Counter& ref_streams;
};

struct CodecTelemetry {
  telemetry::Counter& decode_blocks;
  StageMetrics decode_huffman;
  StageMetrics decode_snappy;
  StageMetrics decode_transform;
  telemetry::Counter& encode_blocks;
  StageMetrics encode_transform;
  StageMetrics encode_snappy;
  StageMetrics encode_huffman;

  static StageMetrics stage(const std::string& prefix) {
    auto& reg = telemetry::MetricsRegistry::global();
    return StageMetrics{reg.counter(prefix + ".ns"),
                        reg.counter(prefix + ".bytes_in"),
                        reg.counter(prefix + ".bytes_out"),
                        reg.counter(prefix + ".fast_streams"),
                        reg.counter(prefix + ".ref_streams")};
  }

  static CodecTelemetry& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static CodecTelemetry* t = new CodecTelemetry{
        reg.counter("codec.decode.blocks"),
        stage("codec.decode.huffman"),
        stage("codec.decode.snappy"),
        stage("codec.decode.transform"),
        reg.counter("codec.encode.blocks"),
        stage("codec.encode.transform"),
        stage("codec.encode.snappy"),
        stage("codec.encode.huffman"),
    };
    return *t;
  }
};

Bytes to_bytes(std::span<const sparse::index_t> v) {
  Bytes out(v.size() * sizeof(sparse::index_t));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

Bytes to_bytes(std::span<const double> v) {
  Bytes out(v.size() * sizeof(double));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

}  // namespace

const char* transform_name(Transform t) {
  switch (t) {
    case Transform::kNone: return "none";
    case Transform::kDelta32: return "delta32";
    case Transform::kVarintDelta: return "varint-delta";
    case Transform::kByteTranspose: return "byte-transpose";
  }
  return "?";
}

const char* codec_selection_name(CodecSelection s) {
  switch (s) {
    case CodecSelection::kSingle: return "single";
    case CodecSelection::kHeuristic: return "heuristic";
    case CodecSelection::kExhaustive: return "exhaustive";
  }
  return "?";
}

Bytes apply_transform(Transform t, ByteSpan raw) {
  switch (t) {
    case Transform::kNone: return Bytes(raw.begin(), raw.end());
    case Transform::kDelta32: return DeltaCodec().encode(raw);
    case Transform::kVarintDelta: return VarintDeltaCodec().encode(raw);
    case Transform::kByteTranspose: return byte_transpose(raw);
  }
  fail("unknown transform");
}

Bytes invert_transform(Transform t, ByteSpan encoded) {
  switch (t) {
    case Transform::kNone: return Bytes(encoded.begin(), encoded.end());
    case Transform::kDelta32: return DeltaCodec().decode(encoded);
    case Transform::kVarintDelta: return VarintDeltaCodec().decode(encoded);
    case Transform::kByteTranspose: return byte_untranspose(encoded);
  }
  fail("unknown transform");
}

PipelineConfig PipelineConfig::udp_dsh() { return PipelineConfig{}; }

PipelineConfig PipelineConfig::udp_ds() {
  PipelineConfig cfg;
  cfg.huffman = false;
  return cfg;
}

PipelineConfig PipelineConfig::cpu_snappy() {
  PipelineConfig cfg;
  cfg.index_transform = Transform::kNone;
  cfg.huffman = false;
  cfg.nnz_per_block = 4096;  // 32 KB value blocks, as the CPU baseline uses
  return cfg;
}

PipelineConfig PipelineConfig::udp_vsh() {
  PipelineConfig cfg;
  cfg.index_transform = Transform::kVarintDelta;
  return cfg;
}

PipelineConfig PipelineConfig::udp_adaptive() {
  PipelineConfig cfg;
  cfg.selection = CodecSelection::kExhaustive;
  return cfg;
}

CodecId CompressedMatrix::block_codec_id(std::size_t b) const {
  return block_codecs.empty() ? codec_id_for(config) : block_codecs[b];
}

std::size_t CompressedMatrix::stream_bytes() const {
  std::size_t total = 0;
  for (const auto& b : blocks) total += b.bytes();
  // One codec-id byte per block is streamed alongside the block data in
  // container v2 — count it so the adaptive-vs-single comparison pays
  // for its own dispatch metadata.
  total += blocks.size();
  if (index_table) total += 128;
  if (value_table) total += 128;
  return total;
}

EncodedStages encode_stages(ByteSpan raw, Transform transform, bool snappy,
                            const HuffmanTable* huffman) {
  EncodedStages st;
  st.after_transform = apply_transform(transform, raw);
  const SnappyCodec snappy_codec;
  st.after_snappy =
      snappy ? snappy_codec.encode(st.after_transform) : st.after_transform;
  if (huffman != nullptr) {
    const HuffmanCodec hc(std::shared_ptr<const HuffmanTable>(
        std::shared_ptr<void>(), huffman));  // non-owning aliasing ptr
    st.after_huffman = hc.encode(st.after_snappy);
  } else {
    st.after_huffman = st.after_snappy;
  }
  return st;
}

CompressedMatrix compress(const sparse::Csr& csr, const PipelineConfig& cfg) {
  RECODE_CHECK(cfg.nnz_per_block > 0);
  RECODE_CHECK(cfg.huffman_sample_fraction > 0.0 &&
               cfg.huffman_sample_fraction <= 1.0);

  CompressedMatrix cm;
  cm.rows = csr.rows;
  cm.cols = csr.cols;
  cm.row_ptr = csr.row_ptr;
  cm.config = cfg;
  cm.blocking = sparse::make_blocking(csr, cfg.nnz_per_block);

  CodecTelemetry& telem = CodecTelemetry::get();
  RECODE_TRACE_SPAN("codec", "compress");
  const SnappyCodec snappy_codec;
  const std::size_t nblocks = cm.blocking.block_count();
  telem.encode_blocks.add(nblocks);

  // Pass 1: transform + snappy per block; histogram sampled blocks for
  // the per-matrix Huffman tables.
  std::vector<Bytes> index_mid(nblocks);
  std::vector<Bytes> value_mid(nblocks);
  std::array<std::uint64_t, 256> index_hist{};
  std::array<std::uint64_t, 256> value_hist{};
  Prng sampler(cfg.sample_seed);

  for (std::size_t b = 0; b < nblocks; ++b) {
    const auto& range = cm.blocking.blocks[b];
    const std::size_t raw_bytes =
        range.count * (sizeof(sparse::index_t) + sizeof(double));
    Bytes idx_raw, val_raw;
    {
      telemetry::StageTimer t(telem.encode_transform.ns);
      idx_raw = apply_transform(
          cfg.index_transform, to_bytes(sparse::block_indices(csr, range)));
      val_raw = apply_transform(
          cfg.value_transform, to_bytes(sparse::block_values(csr, range)));
    }
    telem.encode_transform.bytes_in.add(raw_bytes);
    telem.encode_transform.bytes_out.add(idx_raw.size() + val_raw.size());
    cm.index_stages.raw += range.count * sizeof(sparse::index_t);
    cm.value_stages.raw += range.count * sizeof(double);

    telem.encode_snappy.bytes_in.add(idx_raw.size() + val_raw.size());
    {
      telemetry::StageTimer t(telem.encode_snappy.ns);
      index_mid[b] =
          cfg.snappy ? snappy_codec.encode(idx_raw) : std::move(idx_raw);
      value_mid[b] =
          cfg.snappy ? snappy_codec.encode(val_raw) : std::move(val_raw);
    }
    telem.encode_snappy.bytes_out.add(index_mid[b].size() +
                                      value_mid[b].size());
    cm.index_stages.after_snappy += index_mid[b].size();
    cm.value_stages.after_snappy += value_mid[b].size();

    if (cfg.huffman && sampler.next_double() < cfg.huffman_sample_fraction) {
      for (std::uint8_t byte : index_mid[b]) ++index_hist[byte];
      for (std::uint8_t byte : value_mid[b]) ++value_hist[byte];
    }
  }

  // Pass 2: train the per-matrix tables on the sampled baseline mid
  // streams, then finish each block — uniformly (kSingle, the v1
  // behavior, bit-for-bit) or through per-block codec selection.
  cm.blocks.resize(nblocks);
  if (cfg.huffman) {
    cm.index_table =
        std::make_shared<const HuffmanTable>(HuffmanTable::build(index_hist));
    cm.value_table =
        std::make_shared<const HuffmanTable>(HuffmanTable::build(value_hist));
  }
  const CodecId base_id = codec_id_for(cfg);
  cm.block_codecs.assign(nblocks, base_id);

  if (cfg.selection == CodecSelection::kSingle) {
    if (cfg.huffman) {
      const HuffmanCodec index_hc(cm.index_table);
      const HuffmanCodec value_hc(cm.value_table);
      for (std::size_t b = 0; b < nblocks; ++b) {
        cm.blocks[b].index_data = index_hc.encode(index_mid[b]);
        cm.blocks[b].value_data = value_hc.encode(value_mid[b]);
        index_mid[b].clear();
        value_mid[b].clear();
      }
    } else {
      for (std::size_t b = 0; b < nblocks; ++b) {
        cm.blocks[b].index_data = std::move(index_mid[b]);
        cm.blocks[b].value_data = std::move(value_mid[b]);
      }
    }
    cm.selection_stats.baseline_bytes = cm.selection_stats.adaptive_bytes =
        cm.index_stages.after_huffman + cm.value_stages.after_huffman;
  } else {
    // Per-block selection. The baseline candidate is finished from the
    // pass-1 mid streams (bitwise what kSingle stores), so exhaustive
    // trial-encode can never lose to the single pipeline: the winner is
    // at most the baseline's size for every block.
    auto& reg = telemetry::MetricsRegistry::global();
    const std::vector<CodecId> candidates = candidate_codecs(cfg);
    const HuffmanTable* itab = cm.index_table.get();
    const HuffmanTable* vtab = cm.value_table.get();
    cm.index_stages.after_snappy = 0;
    cm.value_stages.after_snappy = 0;
    for (std::size_t b = 0; b < nblocks; ++b) {
      const auto& range = cm.blocking.blocks[b];
      const auto idx_span = sparse::block_indices(csr, range);
      const auto val_span = sparse::block_values(csr, range);

      std::size_t chosen_mid[2] = {index_mid[b].size(), value_mid[b].size()};
      CompressedBlock chosen_block;
      if (cfg.huffman) {
        const HuffmanCodec index_hc(cm.index_table);
        const HuffmanCodec value_hc(cm.value_table);
        chosen_block.index_data = index_hc.encode(index_mid[b]);
        chosen_block.value_data = value_hc.encode(value_mid[b]);
      } else {
        chosen_block.index_data = std::move(index_mid[b]);
        chosen_block.value_data = std::move(value_mid[b]);
      }
      const std::size_t baseline_bytes = chosen_block.bytes();
      CodecId chosen = base_id;

      if (cfg.selection == CodecSelection::kHeuristic) {
        const CodecId picked = select_block_codec(
            sparse::compute_block_stats(idx_span, val_span), cfg);
        if (picked != chosen) {
          std::size_t mid[2];
          chosen_block = encode_block(idx_span, val_span,
                                      codec_from_id(picked), itab, vtab, mid);
          chosen = picked;
          chosen_mid[0] = mid[0];
          chosen_mid[1] = mid[1];
        }
      } else {  // kExhaustive: smallest total bytes, ties keep the baseline
        for (const CodecId cand : candidates) {
          if (cand == base_id) continue;
          std::size_t mid[2];
          CompressedBlock trial = encode_block(
              idx_span, val_span, codec_from_id(cand), itab, vtab, mid);
          if (trial.bytes() < chosen_block.bytes()) {
            chosen_block = std::move(trial);
            chosen = cand;
            chosen_mid[0] = mid[0];
            chosen_mid[1] = mid[1];
          }
        }
      }

      cm.selection_stats.baseline_bytes += baseline_bytes;
      cm.selection_stats.adaptive_bytes += chosen_block.bytes();
      if (chosen != base_id) ++cm.selection_stats.switched_blocks;
      reg.counter("codec.select.id." + codec_name(chosen) + ".blocks").add(1);
      cm.index_stages.after_snappy += chosen_mid[0];
      cm.value_stages.after_snappy += chosen_mid[1];
      cm.blocks[b] = std::move(chosen_block);
      cm.block_codecs[b] = chosen;
    }
    reg.counter("codec.select.blocks").add(nblocks);
    reg.counter("codec.select.switched_blocks")
        .add(cm.selection_stats.switched_blocks);
    reg.counter("codec.select.bytes_baseline")
        .add(cm.selection_stats.baseline_bytes);
    reg.counter("codec.select.bytes_adaptive")
        .add(cm.selection_stats.adaptive_bytes);
    reg.counter("codec.select.bytes_saved")
        .add(cm.selection_stats.baseline_bytes -
             std::min(cm.selection_stats.baseline_bytes,
                      cm.selection_stats.adaptive_bytes));
  }

  for (const auto& b : cm.blocks) {
    cm.index_stages.after_huffman += b.index_data.size();
    cm.value_stages.after_huffman += b.value_data.size();
  }
  return cm;
}

namespace {

// A decoded stream aliasing arena memory.
struct ArenaStream {
  const std::uint8_t* data;
  std::size_t size;
};

// Decodes one compressed stream through the configured stages without
// allocating (once the arenas are warm). Intermediates ping-pong between
// the scratch arena's A/B slabs; whichever stage runs last writes its
// output into `out_slot` of the out arena, so the result needs no final
// copy. expect_bytes is the caller's expected decoded size, used only to
// cap the varint-delta destination (its true output size is
// data-dependent and size-checked by the caller).
//
// Every slab is sized only after the reference decoders' own
// untrusted-length checks, so a corrupt stream fails with the reference
// error before it can demand an attacker-chosen allocation.
ArenaStream decode_stream_arena(bool huffman, bool snappy, ByteSpan data,
                                Transform transform,
                                const HuffmanTable* table,
                                std::size_t expect_bytes, DecodeArena& scratch,
                                DecodeArena& out, std::size_t out_slot,
                                CodecTelemetry& telem) {
  const bool transform_on = transform != Transform::kNone;
  const std::uint8_t* cur = data.data();
  std::size_t cur_size = data.size();
  telemetry::MovementLedger& ledger = telemetry::MovementLedger::global();

  if (huffman) {
    const std::size_t stage_in = cur_size;
    telem.decode_huffman.bytes_in.add(cur_size);
    RECODE_TRACE_SPAN("codec", "huffman_decode");
    telemetry::StageTimer t(telem.decode_huffman.ns);
    telemetry::StageTimer lt(ledger.hop(telemetry::Hop::kHuffman).ns);
    std::size_t pos = 0;
    const std::uint64_t n = varint_read(cur, cur_size, pos);
    if (n > (static_cast<std::uint64_t>(cur_size) - pos) * 8) {
      fail("huffman: declared count exceeds stream capacity");
    }
    std::uint8_t* dst = (snappy || transform_on)
                            ? scratch.slab(DecodeArena::kScratchA,
                                           static_cast<std::size_t>(n))
                            : out.slab(out_slot, static_cast<std::size_t>(n));
    if constexpr (fast::kEnabled) {
      fast::huffman_decode(*table, {cur, cur_size}, dst);
      telem.decode_huffman.fast_streams.add(1);
    } else {
      const HuffmanCodec hc(std::shared_ptr<const HuffmanTable>(
          std::shared_ptr<void>(), table));  // non-owning aliasing ptr
      const Bytes decoded = hc.decode({cur, cur_size});
      std::memcpy(dst, decoded.data(), decoded.size());
      telem.decode_huffman.ref_streams.add(1);
    }
    cur = dst;
    cur_size = static_cast<std::size_t>(n);
    telem.decode_huffman.bytes_out.add(cur_size);
    ledger.flow(telemetry::Hop::kHuffman, stage_in, cur_size);
  } else {
    ledger.pass_through(telemetry::Hop::kHuffman, cur_size);
  }

  if (snappy) {
    const std::size_t stage_in = cur_size;
    telem.decode_snappy.bytes_in.add(cur_size);
    RECODE_TRACE_SPAN("codec", "snappy_decode");
    telemetry::StageTimer t(telem.decode_snappy.ns);
    telemetry::StageTimer lt(ledger.hop(telemetry::Hop::kSnappy).ns);
    std::size_t pos = 0;
    const std::uint64_t n = varint_read(cur, cur_size, pos);
    if (n > static_cast<std::uint64_t>(cur_size - pos) * 24 + 8) {
      fail("snappy: declared length implausible for stream size");
    }
    std::uint8_t* dst =
        transform_on
            ? scratch.slab(huffman ? DecodeArena::kScratchB
                                   : DecodeArena::kScratchA,
                           static_cast<std::size_t>(n))
            : out.slab(out_slot, static_cast<std::size_t>(n));
    if constexpr (fast::kEnabled) {
      fast::snappy_decode({cur, cur_size}, dst);
      telem.decode_snappy.fast_streams.add(1);
    } else {
      const Bytes decoded = SnappyCodec().decode({cur, cur_size});
      std::memcpy(dst, decoded.data(), decoded.size());
      telem.decode_snappy.ref_streams.add(1);
    }
    cur = dst;
    cur_size = static_cast<std::size_t>(n);
    telem.decode_snappy.bytes_out.add(cur_size);
    ledger.flow(telemetry::Hop::kSnappy, stage_in, cur_size);
  } else {
    ledger.pass_through(telemetry::Hop::kSnappy, cur_size);
  }

  const std::size_t transform_in = cur_size;
  telem.decode_transform.bytes_in.add(cur_size);
  RECODE_TRACE_SPAN("codec", "transform_decode");
  telemetry::StageTimer t(telem.decode_transform.ns);
  telemetry::StageTimer lt(ledger.hop(telemetry::Hop::kTransform).ns);
  switch (transform) {
    case Transform::kNone: {
      // Earlier stages already landed in the out slab. With no stage at
      // all, copy the raw stream in so the caller always reads (aligned)
      // arena memory.
      if (!huffman && !snappy) {
        std::uint8_t* dst = out.slab(out_slot, cur_size);
        std::memcpy(dst, cur, cur_size);
        cur = dst;
      }
      break;
    }
    case Transform::kDelta32: {
      std::uint8_t* dst = out.slab(out_slot, cur_size);
      if constexpr (fast::kEnabled) {
        cur_size = fast::delta_decode({cur, cur_size}, dst);
        telem.decode_transform.fast_streams.add(1);
      } else {
        const Bytes decoded = DeltaCodec().decode({cur, cur_size});
        std::memcpy(dst, decoded.data(), decoded.size());
        cur_size = decoded.size();
        telem.decode_transform.ref_streams.add(1);
      }
      cur = dst;
      break;
    }
    case Transform::kVarintDelta: {
      std::uint8_t* dst = out.slab(out_slot, expect_bytes);
      if constexpr (fast::kEnabled) {
        cur_size = fast::varint_delta_decode({cur, cur_size}, dst,
                                             expect_bytes);
        telem.decode_transform.fast_streams.add(1);
      } else {
        const Bytes decoded = VarintDeltaCodec().decode({cur, cur_size});
        std::memcpy(dst, decoded.data(),
                    std::min(decoded.size(), expect_bytes));
        cur_size = decoded.size();
        telem.decode_transform.ref_streams.add(1);
      }
      cur = dst;
      break;
    }
    case Transform::kByteTranspose: {
      std::uint8_t* dst = out.slab(out_slot, cur_size);
      if constexpr (fast::kEnabled) {
        cur_size = fast::byte_untranspose({cur, cur_size}, dst);
        telem.decode_transform.fast_streams.add(1);
      } else {
        const Bytes decoded = byte_untranspose({cur, cur_size});
        std::memcpy(dst, decoded.data(), decoded.size());
        cur_size = decoded.size();
        telem.decode_transform.ref_streams.add(1);
      }
      cur = dst;
      break;
    }
  }
  telem.decode_transform.bytes_out.add(cur_size);
  ledger.flow(telemetry::Hop::kTransform, transform_in, cur_size);
  return ArenaStream{cur, cur_size};
}

}  // namespace

DecodedBlock decompress_block_fast(const CompressedMatrix& cm, std::size_t b,
                                   DecodeArena& scratch, DecodeArena& out) {
  RECODE_CHECK(b < cm.blocks.size());
  const auto& block = cm.blocks[b];
  return decompress_block_fast(cm, b, block.index_data, block.value_data,
                               scratch, out);
}

DecodedBlock decompress_block_fast(const CompressedMatrix& cm, std::size_t b,
                                   ByteSpan index_data, ByteSpan value_data,
                                   DecodeArena& scratch, DecodeArena& out) {
  RECODE_CHECK(b < cm.blocking.blocks.size());
  const BlockCodec bc = block_codec_checked(cm, b);
  const std::size_t payload = index_data.size() + value_data.size();
  CodecTelemetry& telem = CodecTelemetry::get();
  telem.decode_blocks.add(1);
  // Container hop: the compressed read includes the per-block codec-id
  // dispatch byte (container v2); the payload goes on to the codec chain.
  telemetry::MovementLedger::global().flow(telemetry::Hop::kContainer,
                                           payload + 1, payload);
  RECODE_TRACE_SPAN_ARG("codec", "decompress_block", "block", b);

  const std::size_t count = cm.blocking.blocks[b].count;
  const ArenaStream idx = decode_stream_arena(
      bc.huffman, bc.snappy, index_data, bc.index_transform,
      cm.index_table.get(), count * sizeof(sparse::index_t), scratch, out,
      DecodeArena::kIndexOut, telem);
  const ArenaStream val = decode_stream_arena(
      bc.huffman, bc.snappy, value_data, bc.value_transform,
      cm.value_table.get(), count * sizeof(double), scratch, out,
      DecodeArena::kValueOut, telem);
  if (idx.size != count * sizeof(sparse::index_t)) {
    fail("decompress_block: index stream size mismatch");
  }
  if (val.size != count * sizeof(double)) {
    fail("decompress_block: value stream size mismatch");
  }
  return DecodedBlock{
      {reinterpret_cast<const sparse::index_t*>(idx.data), count},
      {reinterpret_cast<const double*>(val.data), count}};
}

void decompress_block(const CompressedMatrix& cm, std::size_t b,
                      std::vector<sparse::index_t>& indices,
                      std::vector<double>& values) {
  thread_local DecodeArena scratch;
  thread_local DecodeArena out;
  const DecodedBlock decoded = decompress_block_fast(cm, b, scratch, out);
  indices.assign(decoded.indices.begin(), decoded.indices.end());
  values.assign(decoded.values.begin(), decoded.values.end());
}

void decompress_block_reference(const CompressedMatrix& cm, std::size_t b,
                                std::vector<sparse::index_t>& indices,
                                std::vector<double>& values) {
  RECODE_CHECK(b < cm.blocks.size());
  const BlockCodec bc = block_codec_checked(cm, b);
  const auto& block = cm.blocks[b];
  CodecTelemetry& telem = CodecTelemetry::get();
  telem.decode_blocks.add(1);
  telemetry::MovementLedger& ledger = telemetry::MovementLedger::global();
  ledger.flow(telemetry::Hop::kContainer, block.bytes() + 1, block.bytes());
  RECODE_TRACE_SPAN_ARG("codec", "decompress_block", "block", b);

  auto decode_stream = [&](ByteSpan data, Transform transform,
                           const std::shared_ptr<const HuffmanTable>& table) {
    Bytes buf(data.begin(), data.end());
    if (bc.huffman) {
      const std::size_t stage_in = buf.size();
      telem.decode_huffman.bytes_in.add(buf.size());
      RECODE_TRACE_SPAN("codec", "huffman_decode");
      telemetry::StageTimer t(telem.decode_huffman.ns);
      telemetry::StageTimer lt(ledger.hop(telemetry::Hop::kHuffman).ns);
      const HuffmanCodec hc(table);
      buf = hc.decode(buf);
      telem.decode_huffman.bytes_out.add(buf.size());
      telem.decode_huffman.ref_streams.add(1);
      ledger.flow(telemetry::Hop::kHuffman, stage_in, buf.size());
    } else {
      ledger.pass_through(telemetry::Hop::kHuffman, buf.size());
    }
    if (bc.snappy) {
      const std::size_t stage_in = buf.size();
      telem.decode_snappy.bytes_in.add(buf.size());
      RECODE_TRACE_SPAN("codec", "snappy_decode");
      telemetry::StageTimer t(telem.decode_snappy.ns);
      telemetry::StageTimer lt(ledger.hop(telemetry::Hop::kSnappy).ns);
      const SnappyCodec sc;
      buf = sc.decode(buf);
      telem.decode_snappy.bytes_out.add(buf.size());
      telem.decode_snappy.ref_streams.add(1);
      ledger.flow(telemetry::Hop::kSnappy, stage_in, buf.size());
    } else {
      ledger.pass_through(telemetry::Hop::kSnappy, buf.size());
    }
    telem.decode_transform.bytes_in.add(buf.size());
    RECODE_TRACE_SPAN("codec", "transform_decode");
    telemetry::StageTimer t(telem.decode_transform.ns);
    telemetry::StageTimer lt(ledger.hop(telemetry::Hop::kTransform).ns);
    Bytes out = invert_transform(transform, buf);
    telem.decode_transform.bytes_out.add(out.size());
    ledger.flow(telemetry::Hop::kTransform, buf.size(), out.size());
    if (transform != Transform::kNone) {
      telem.decode_transform.ref_streams.add(1);
    }
    return out;
  };

  const Bytes idx_bytes =
      decode_stream(block.index_data, bc.index_transform, cm.index_table);
  const Bytes val_bytes =
      decode_stream(block.value_data, bc.value_transform, cm.value_table);

  const std::size_t count = cm.blocking.blocks[b].count;
  if (idx_bytes.size() != count * sizeof(sparse::index_t)) {
    fail("decompress_block: index stream size mismatch");
  }
  if (val_bytes.size() != count * sizeof(double)) {
    fail("decompress_block: value stream size mismatch");
  }
  indices.resize(count);
  values.resize(count);
  std::memcpy(indices.data(), idx_bytes.data(), idx_bytes.size());
  std::memcpy(values.data(), val_bytes.data(), val_bytes.size());
}

sparse::Csr decompress(const CompressedMatrix& cm) {
  sparse::Csr csr;
  csr.rows = cm.rows;
  csr.cols = cm.cols;
  csr.row_ptr = cm.row_ptr;
  // The nnz comes from an untrusted row_ptr when cm was parsed from a
  // container; cap the (purely advisory) pre-allocation so a tampered
  // count cannot demand the full allocation up front. Oversized claims
  // then fail in decompress_block's per-block size checks instead.
  const std::size_t reserve_nnz =
      std::min(cm.nnz(), static_cast<std::size_t>(1) << 26);
  csr.col_idx.reserve(reserve_nnz);
  csr.val.reserve(reserve_nnz);

  std::vector<sparse::index_t> indices;
  std::vector<double> values;
  for (std::size_t b = 0; b < cm.blocks.size(); ++b) {
    decompress_block(cm, b, indices, values);
    csr.col_idx.insert(csr.col_idx.end(), indices.begin(), indices.end());
    csr.val.insert(csr.val.end(), values.begin(), values.end());
  }
  csr.validate();
  return csr;
}

}  // namespace recode::codec
