// Reusable decode scratch memory for the allocation-free fast decode path.
//
// A DecodeArena owns a small fixed set of byte slabs that grow
// monotonically and are reused block after block: once the arena has seen
// the largest block of a matrix, every further decode through it performs
// zero heap allocations (the property the StreamingExecutor's steady
// state and the zero-alloc test assert). Every slab carries kArenaSlop
// trailing bytes so the word-wise decoders (8/16-byte copies, 4-symbol
// Huffman emits) may overshoot their logical end without ever writing
// outside owned memory.
//
// Ownership rule: arena slabs never escape the worker that owns the
// arena. Anything that must outlive the next decode into the same arena
// — in particular a spmv::BandCache entry pinning a decoded band across
// multiply calls — takes an exact-sized copy of the decoded streams;
// cache-owned memory in turn never rejoins a worker's slab pool. The
// alternative (detaching slabs into the cache) would pin the
// geometric-growth padding too and force the arena to re-grow per
// cached block, so copies are both the simpler and the cheaper policy.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace recode::codec {

// Trailing writable margin on every slab. Must cover the largest
// overshoot of any fast decoder: 16-byte literal chunks and 8-byte match
// chunks in Snappy (<= 15 bytes past the logical end) and the 4-byte
// multi-symbol Huffman emit (<= 3 bytes past the declared count).
inline constexpr std::size_t kArenaSlop = 16;

class DecodeArena {
 public:
  // Slab roles. Scratch slabs ping-pong intermediate stage outputs inside
  // one stream decode; the index/value slabs hold a block's final decoded
  // streams (and stay valid until the next decode into the same arena).
  enum Slot : std::size_t {
    kScratchA = 0,
    kScratchB = 1,
    kIndexOut = 2,
    kValueOut = 3,
    kSlotCount = 4,
  };

  // Returns a buffer of at least `size` + kArenaSlop bytes for `slot`,
  // growing geometrically on first use and reused (no allocation, stable
  // capacity) once large enough. The returned memory is uninitialized.
  std::uint8_t* slab(std::size_t slot, std::size_t size) {
    Slab& s = slabs_[slot];
    const std::size_t need = size + kArenaSlop;
    if (s.capacity < need) {
      std::size_t cap = s.capacity == 0 ? 4096 : s.capacity;
      while (cap < need) cap *= 2;
      s.data = std::make_unique<std::uint8_t[]>(cap);
      s.capacity = cap;
      ++allocations_;
    }
    return s.data.get();
  }

  // Usable bytes currently owned by `slot` (capacity minus the slop that
  // decoders may overshoot into), for callers that size-check retained
  // views.
  std::size_t slot_capacity(std::size_t slot) const {
    const std::size_t cap = slabs_[slot].capacity;
    return cap < kArenaSlop ? 0 : cap - kArenaSlop;
  }

  // Grow events since construction. Steady-state decode through a warmed
  // arena keeps this constant — the allocation-free contract.
  std::uint64_t allocations() const { return allocations_; }

  // Total bytes owned across all slabs (observability / tests).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Slab& s : slabs_) total += s.capacity;
    return total;
  }

 private:
  struct Slab {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t capacity = 0;
  };

  std::array<Slab, kSlotCount> slabs_;
  std::uint64_t allocations_ = 0;
};

}  // namespace recode::codec
