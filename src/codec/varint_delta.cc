#include "codec/varint_delta.h"

#include <cstring>

#include "common/error.h"
#include "common/varint.h"

namespace recode::codec {

namespace {

std::uint32_t zigzag32(std::uint32_t d) {
  return (d << 1) ^ static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(d) >> 31);
}

std::uint32_t unzigzag32(std::uint32_t z) {
  return (z >> 1) ^ (~(z & 1) + 1);
}

}  // namespace

Bytes VarintDeltaCodec::encode(ByteSpan input) const {
  if (input.size() % 4 != 0) {
    fail("varint-delta32: input not a multiple of 4 bytes");
  }
  Bytes out;
  out.reserve(input.size() / 2);
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < input.size(); i += 4) {
    std::uint32_t v;
    std::memcpy(&v, input.data() + i, 4);
    varint_append(out, zigzag32(v - prev));
    prev = v;
  }
  return out;
}

Bytes VarintDeltaCodec::decode(ByteSpan input) const {
  Bytes out;
  out.reserve(input.size() * 2);
  std::uint32_t acc = 0;
  std::size_t pos = 0;
  while (pos < input.size()) {
    const std::uint64_t z = varint_read(input.data(), input.size(), pos);
    if (z > 0xFFFFFFFFull) fail("varint-delta32: delta exceeds 32 bits");
    acc += unzigzag32(static_cast<std::uint32_t>(z));
    const std::size_t n = out.size();
    out.resize(n + 4);
    std::memcpy(out.data() + n, &acc, 4);
  }
  return out;
}

}  // namespace recode::codec
