// From-scratch implementation of the Snappy compression format
// (https://github.com/google/snappy/blob/master/format_description.txt).
//
// The paper uses Google Snappy 1.1.3 as both the CPU baseline compressor
// (32 KB blocks) and one stage of the UDP pipeline (8 KB blocks). No
// snappy library is available offline, and the UDP port needs the format
// implemented explicitly anyway, so this is a complete format-compatible
// encoder/decoder:
//   * preamble: uncompressed length as LEB128 varint
//   * literal tags (00) with 6-bit or 1-4 extra-byte lengths
//   * copy tags: 1-byte offset (01, len 4-11, 11-bit offset),
//     2-byte offset (10, len 1-64), 4-byte offset (11)
// The encoder uses the standard greedy hash-table matcher (min match 4,
// 64 KB window) — the same algorithmic shape as the reference encoder.
#pragma once

#include "codec/codec.h"

namespace recode::codec {

class SnappyCodec final : public Codec {
 public:
  std::string name() const override { return "snappy"; }

  Bytes encode(ByteSpan input) const override;

  // Throws recode::Error on any malformed stream (bad varint, copy before
  // start, overrun).
  Bytes decode(ByteSpan input) const override;

  // Decoded length announced by the preamble without decompressing.
  static std::size_t decoded_length(ByteSpan input);
};

}  // namespace recode::codec
