// Structure-aware pipeline selection — the §VII future-work direction
// ("novel and customized encodings on top of CSR for matrices with
// particular structures") made concrete.
//
// Because the UDP is programmable, choosing a different encoding per
// matrix costs a program swap, not a hardware change. The selector reads
// the structural statistics (sparse/stats.h) and picks the index
// transform: matrices with tight index locality take varint deltas
// (most deltas fit one byte), everything else keeps the paper's
// fixed-width delta in front of Snappy.
#pragma once

#include "codec/pipeline.h"
#include "sparse/stats.h"

namespace recode::codec {

// Returns the recommended pipeline for a matrix with these statistics.
PipelineConfig select_pipeline(const sparse::MatrixStats& stats);

// Convenience: compute stats and select in one step.
PipelineConfig select_pipeline(const sparse::Csr& csr);

// Per-block codec pick for CodecSelection::kHeuristic — one O(block)
// statistics pass instead of trial-encoding every candidate. Dense runs
// (deltas fitting one varint byte) take varint-delta indices, scattered
// blocks keep fixed-width delta; shared-exponent value blocks take the
// byte-transposition, constant-value blocks stay on the config's value
// transform (they are already Snappy's best case). Entropy stages always
// follow the config so the block stays decodable with the matrix tables.
CodecId select_block_codec(const sparse::BlockStats& stats,
                           const PipelineConfig& cfg);

}  // namespace recode::codec
