// Streaming container writer: compresses a matrix of arbitrary size to
// an .rcm file with O(row_ptr + one block) resident memory — the
// producer that makes ≥1e8-nnz out-of-core runs possible without ever
// materializing the CSR (let alone the compressed matrix) in RAM.
//
// The caller describes the matrix by its row_ptr and a block-filler
// callback that writes the raw col_idx/value streams of one block on
// demand. The writer replays compress()'s two-pass kSingle pipeline —
// pass 1 samples blocks (same Prng sequence) to train the Huffman
// tables, pass 2 encodes and appends each record — so for identical
// input the file is byte-identical to compress() + write_compressed()
// with the index appended. The block-offset index is always written.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "codec/pipeline.h"

namespace recode::codec {

// Fills the raw (pre-transform) streams of block `b`, which covers the
// nnz range [first_nnz, first_nnz + indices.size()). Called once per
// block per pass (twice total when the config trains Huffman tables).
// Must be deterministic: both passes must produce the same bytes.
using BlockFiller =
    std::function<void(std::size_t b, std::uint64_t first_nnz,
                       std::span<sparse::index_t> indices,
                       std::span<double> values)>;

struct StreamWriteResult {
  std::size_t block_count = 0;
  std::uint64_t file_bytes = 0;     // total container size incl. index
  std::uint64_t payload_bytes = 0;  // compressed block payloads only
};

// Writes the container for a matrix with the given shape. Only
// CodecSelection::kSingle configs are supported (per-block trial
// encoding needs all candidates in memory; the out-of-core producer
// path doesn't). Throws recode::Error on I/O failure or a non-kSingle
// config.
StreamWriteResult write_compressed_stream(
    const std::string& path, sparse::index_t rows, sparse::index_t cols,
    std::span<const sparse::offset_t> row_ptr, const PipelineConfig& cfg,
    const BlockFiller& fill);

}  // namespace recode::codec
