#include "codec/registry.h"

#include <algorithm>
#include <cstring>

#include "codec/huffman.h"
#include "codec/snappy.h"
#include "common/error.h"

namespace recode::codec {

namespace {

constexpr CodecId kIndexShift = 0;
constexpr CodecId kValueShift = 2;
constexpr CodecId kSnappyBit = 1u << 4;
constexpr CodecId kHuffmanBit = 1u << 5;
constexpr CodecId kReservedMask = 0xC0;

// Index streams never use byte-transposition (it regroups 8-byte value
// records; indices are 4-byte words), so the index field tops out at
// varint-delta.
constexpr std::uint8_t kMaxIndexTransform = 2;
constexpr std::uint8_t kMaxValueTransform = 3;

Bytes to_bytes(std::span<const sparse::index_t> v) {
  Bytes out(v.size() * sizeof(sparse::index_t));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

Bytes to_bytes(std::span<const double> v) {
  Bytes out(v.size() * sizeof(double));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

}  // namespace

CodecId codec_id(const BlockCodec& c) {
  RECODE_CHECK(static_cast<std::uint8_t>(c.index_transform) <=
               kMaxIndexTransform);
  RECODE_CHECK(static_cast<std::uint8_t>(c.value_transform) <=
               kMaxValueTransform);
  return static_cast<CodecId>(
      (static_cast<CodecId>(c.index_transform) << kIndexShift) |
      (static_cast<CodecId>(c.value_transform) << kValueShift) |
      (c.snappy ? kSnappyBit : 0) | (c.huffman ? kHuffmanBit : 0));
}

BlockCodec codec_from_id(CodecId id) {
  RECODE_PARSE_CHECK((id & kReservedMask) == 0 &&
                         ((id >> kIndexShift) & 0x3) <= kMaxIndexTransform,
                     "codec registry: unknown codec id " + std::to_string(id));
  BlockCodec c;
  c.index_transform = static_cast<Transform>((id >> kIndexShift) & 0x3);
  c.value_transform = static_cast<Transform>((id >> kValueShift) & 0x3);
  c.snappy = (id & kSnappyBit) != 0;
  c.huffman = (id & kHuffmanBit) != 0;
  return c;
}

bool codec_id_valid(CodecId id) {
  return (id & kReservedMask) == 0 && ((id >> kIndexShift) & 0x3) <= 2;
}

std::string codec_name(CodecId id) {
  const BlockCodec c = codec_from_id(id);
  auto t = [](Transform tr) {
    switch (tr) {
      case Transform::kNone: return "none";
      case Transform::kDelta32: return "d32";
      case Transform::kVarintDelta: return "vd";
      case Transform::kByteTranspose: return "bt";
    }
    return "?";
  };
  std::string name = std::string("i:") + t(c.index_transform) +
                     ".v:" + t(c.value_transform);
  if (c.snappy) name += "+s";
  if (c.huffman) name += "+h";
  return name;
}

CodecId codec_id_for(const PipelineConfig& cfg) {
  return codec_id(BlockCodec{cfg.index_transform, cfg.value_transform,
                             cfg.snappy, cfg.huffman});
}

std::vector<CodecId> candidate_codecs(const PipelineConfig& cfg) {
  std::vector<CodecId> out;
  auto push = [&](const BlockCodec& c) {
    const CodecId id = codec_id(c);
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  };
  // Baseline first: ties in the trial encoder resolve toward it, so a
  // structureless matrix degenerates to the single-pipeline encoding.
  push(BlockCodec{cfg.index_transform, cfg.value_transform, cfg.snappy,
                  cfg.huffman});
  const Transform index_transforms[] = {cfg.index_transform,
                                        Transform::kDelta32,
                                        Transform::kVarintDelta};
  const Transform value_transforms[] = {cfg.value_transform,
                                        Transform::kByteTranspose};
  // Entropy combinations never exceed the config's stages: huffman
  // candidates need the trained tables, and dropping stages is how an
  // already-dense block avoids paying for framing it cannot use.
  std::vector<std::pair<bool, bool>> entropy = {{cfg.snappy, cfg.huffman}};
  if (cfg.huffman) entropy.emplace_back(cfg.snappy, false);
  entropy.emplace_back(false, false);
  for (const Transform it : index_transforms) {
    for (const Transform vt : value_transforms) {
      for (const auto& [snappy, huffman] : entropy) {
        push(BlockCodec{it, vt, snappy, huffman});
      }
    }
  }
  // Stored: raw streams, no stages at all — the incompressible-block
  // floor (a block can cost its raw 12 B/nnz, never more).
  push(BlockCodec{Transform::kNone, Transform::kNone, false, false});
  return out;
}

BlockCodec block_codec_checked(const CompressedMatrix& cm, std::size_t b) {
  const BlockCodec bc = codec_from_id(cm.block_codec_id(b));
  if (bc.huffman) {
    RECODE_PARSE_CHECK(
        cm.index_table && cm.value_table,
        "codec registry: block codec requires huffman tables that are "
        "not present");
  }
  return bc;
}

Bytes byte_transpose(ByteSpan raw) {
  const std::size_t n = raw.size() / 8;
  Bytes out(raw.size());
  for (std::size_t j = 0; j < 8; ++j) {
    std::uint8_t* plane = out.data() + j * n;
    for (std::size_t r = 0; r < n; ++r) plane[r] = raw[r * 8 + j];
  }
  if (const std::size_t tail = raw.size() - n * 8; tail != 0) {
    std::memcpy(out.data() + n * 8, raw.data() + n * 8, tail);
  }
  return out;
}

Bytes byte_untranspose(ByteSpan encoded) {
  const std::size_t n = encoded.size() / 8;
  Bytes out(encoded.size());
  for (std::size_t j = 0; j < 8; ++j) {
    const std::uint8_t* plane = encoded.data() + j * n;
    for (std::size_t r = 0; r < n; ++r) out[r * 8 + j] = plane[r];
  }
  if (const std::size_t tail = encoded.size() - n * 8; tail != 0) {
    std::memcpy(out.data() + n * 8, encoded.data() + n * 8, tail);
  }
  return out;
}

CompressedBlock encode_block(std::span<const sparse::index_t> indices,
                             std::span<const double> values,
                             const BlockCodec& c,
                             const HuffmanTable* index_table,
                             const HuffmanTable* value_table,
                             std::size_t* after_snappy) {
  RECODE_CHECK(!c.huffman ||
               (index_table != nullptr && value_table != nullptr));
  const SnappyCodec snappy_codec;
  auto encode_stream = [&](Bytes raw, Transform transform,
                           const HuffmanTable* table, std::size_t* mid_size) {
    Bytes buf = apply_transform(transform, raw);
    if (c.snappy) buf = snappy_codec.encode(buf);
    if (mid_size != nullptr) *mid_size = buf.size();
    if (c.huffman) {
      const HuffmanCodec hc(std::shared_ptr<const HuffmanTable>(
          std::shared_ptr<void>(), table));  // non-owning aliasing ptr
      buf = hc.encode(buf);
    }
    return buf;
  };
  CompressedBlock block;
  block.index_data =
      encode_stream(to_bytes(indices), c.index_transform, index_table,
                    after_snappy != nullptr ? &after_snappy[0] : nullptr);
  block.value_data =
      encode_stream(to_bytes(values), c.value_transform, value_table,
                    after_snappy != nullptr ? &after_snappy[1] : nullptr);
  return block;
}

}  // namespace recode::codec
