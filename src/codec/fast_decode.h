// Allocation-free, word-wise decoders for the per-block decode hot path.
//
// The paper's throughput claims (Fig 12/13: UDP-class decompression at
// >20 GB/s, ~7x CPU Snappy) assume the decompression inner loop is
// engineered to saturate bandwidth. These are the host-side equivalents:
//
//  * huffman_decode — 64-bit bit buffer refilled 48-56 bits at a time via
//    one unaligned 8-byte load, multi-symbol table lookups emitting up to
//    4 symbols per probe (HuffmanTable::MultiEntry), scalar tail.
//  * snappy_decode — 16-byte literal chunks and 8-byte match chunks into
//    a slop-margin destination; byte loop only near the input tail and
//    for overlapping short-offset copies.
//  * delta_decode / varint_delta_decode — the inverse transforms writing
//    straight into a caller-provided destination.
//
// All decode into caller-owned memory (a DecodeArena slab) with at least
// kArenaSlop writable bytes past the logical end, never allocate, and are
// bitwise- and error-identical to the reference decoders in
// HuffmanCodec::decode / SnappyCodec::decode / DeltaCodec::decode /
// VarintDeltaCodec::decode: same output on valid streams, a recode::Error
// with the same message on the same malformed stream. The fast-decode
// differential suite (tests/robustness) enforces both properties,
// including over CorruptionEngine inputs under ASan.
//
// Build knob: the RECODE_FAST_DECODE CMake option (default ON) defines
// RECODE_FAST_DECODE_ENABLED on every target linking recode_codec. When
// OFF these functions remain available (the differential tests still
// compare them against the references), but the pipeline routes every
// block through the reference scalar decoders instead.
#pragma once

#include <cstdint>

#include "codec/codec.h"
#include "codec/huffman.h"

#ifndef RECODE_FAST_DECODE_ENABLED
#define RECODE_FAST_DECODE_ENABLED 1
#endif

namespace recode::codec::fast {

// True when the pipeline decode path uses these decoders (the
// RECODE_FAST_DECODE CMake option).
inline constexpr bool kEnabled = RECODE_FAST_DECODE_ENABLED != 0;

// Decodes a Huffman stream (varint count + MSB-first bits) into dst.
// dst must have room for the declared count plus kArenaSlop bytes — size
// it with HuffmanCodec::decoded_length. Returns the decoded byte count.
std::size_t huffman_decode(const HuffmanTable& table, ByteSpan input,
                           std::uint8_t* dst);

// Decodes a Snappy stream into dst. dst must have room for the declared
// length plus kArenaSlop bytes — size it with SnappyCodec::decoded_length
// (which also bounds it against the format's maximum expansion). Returns
// the decoded byte count.
std::size_t snappy_decode(ByteSpan input, std::uint8_t* dst);

// Inverse 32-bit zigzag delta into dst (output size == input size; dst
// needs input.size() + kArenaSlop bytes). Returns the output size.
std::size_t delta_decode(ByteSpan input, std::uint8_t* dst);

// Inverse LEB128 zigzag delta into dst, which holds dst_cap usable bytes
// (+ kArenaSlop). The output size is data-dependent: decoding continues
// past dst_cap without writing (so parse errors surface exactly where the
// reference decoder would throw them) and the total is returned — the
// caller compares it against the expected stream size, mirroring the
// reference path's decode-then-size-check order.
std::size_t varint_delta_decode(ByteSpan input, std::uint8_t* dst,
                                std::size_t dst_cap);

// Inverse of codec::byte_transpose: gathers the 8 plane bytes of each
// 8-byte record with word-wise stores (output size == input size; dst
// needs input.size() + kArenaSlop bytes). Returns the output size. A pure
// permutation — no error cases, matching the reference byte_untranspose.
std::size_t byte_untranspose(ByteSpan input, std::uint8_t* dst);

}  // namespace recode::codec::fast
