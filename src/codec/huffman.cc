#include "codec/huffman.h"

#include <algorithm>
#include <queue>

#include "common/bitio.h"
#include "common/error.h"
#include "common/varint.h"

namespace recode::codec {

namespace {

// Plain Huffman tree build; returns per-symbol code lengths.
std::array<std::uint8_t, 256> huffman_lengths(
    const std::array<std::uint64_t, 256>& freq) {
  struct Node {
    std::uint64_t weight;
    int left;    // -1 for leaf
    int right;
    int symbol;  // leaf only
  };
  std::vector<Node> nodes;
  nodes.reserve(512);
  using HeapItem = std::pair<std::uint64_t, int>;  // (weight, node index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (int s = 0; s < 256; ++s) {
    nodes.push_back({freq[s], -1, -1, s});
    heap.emplace(freq[s], s);
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, a, b, -1});
    heap.emplace(wa + wb, static_cast<int>(nodes.size()) - 1);
  }
  std::array<std::uint8_t, 256> lengths{};
  // Iterative DFS carrying depth.
  std::vector<std::pair<int, int>> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(idx)];
    if (n.left < 0) {
      lengths[static_cast<std::size_t>(n.symbol)] =
          static_cast<std::uint8_t>(std::max(depth, 1));
    } else {
      stack.emplace_back(n.left, depth + 1);
      stack.emplace_back(n.right, depth + 1);
    }
  }
  return lengths;
}

}  // namespace

HuffmanTable::HuffmanTable() {
  lengths_.fill(8);  // uniform byte code
  assign_canonical_codes();
  build_decode_table();
}

HuffmanTable HuffmanTable::build(
    const std::array<std::uint64_t, 256>& histogram) {
  // Add-one smoothing keeps every symbol encodable even when the training
  // sample (a fraction of the matrix's blocks) missed it.
  std::array<std::uint64_t, 256> freq;
  for (int s = 0; s < 256; ++s) freq[s] = histogram[s] + 1;

  // Length-limit by flattening: halving the dynamic range of the weights
  // until the deepest leaf fits in kMaxCodeLen. Converges in a few rounds
  // and is near-optimal for byte alphabets.
  HuffmanTable t;
  for (;;) {
    t.lengths_ = huffman_lengths(freq);
    const std::uint8_t max_len =
        *std::max_element(t.lengths_.begin(), t.lengths_.end());
    if (max_len <= kMaxCodeLen) break;
    for (auto& f : freq) f = (f >> 1) + 1;
  }
  t.assign_canonical_codes();
  t.build_decode_table();
  return t;
}

HuffmanTable HuffmanTable::train(ByteSpan sample) {
  std::array<std::uint64_t, 256> histogram{};
  for (std::uint8_t b : sample) ++histogram[b];
  return build(histogram);
}

Bytes HuffmanTable::serialize() const {
  Bytes out(128);
  for (int s = 0; s < 256; s += 2) {
    out[static_cast<std::size_t>(s / 2)] = static_cast<std::uint8_t>(
        (lengths_[static_cast<std::size_t>(s)] << 4) |
        lengths_[static_cast<std::size_t>(s) + 1]);
  }
  return out;
}

HuffmanTable HuffmanTable::deserialize(ByteSpan data) {
  if (data.size() != 128) fail("huffman table: expected 128 bytes");
  HuffmanTable t;
  for (int s = 0; s < 256; s += 2) {
    const std::uint8_t packed = data[static_cast<std::size_t>(s / 2)];
    t.lengths_[static_cast<std::size_t>(s)] = packed >> 4;
    t.lengths_[static_cast<std::size_t>(s) + 1] = packed & 0xF;
  }
  std::uint64_t kraft = 0;
  for (auto len : t.lengths_) {
    if (len == 0 || len > kMaxCodeLen) fail("huffman table: bad code length");
    kraft += 1u << (kMaxCodeLen - len);
  }
  // Canonical tables built from a 256-symbol Huffman tree are always
  // complete prefix codes. Anything else (tampered lengths) would either
  // overflow the code space or leave undecodable windows in the flat
  // decode table, so reject it before assigning codes.
  if (kraft != (1u << kMaxCodeLen)) {
    fail("huffman table: lengths do not form a complete prefix code");
  }
  t.assign_canonical_codes();
  t.build_decode_table();
  return t;
}

double HuffmanTable::expected_bits(
    const std::array<std::uint64_t, 256>& histogram) const {
  std::uint64_t total = 0;
  std::uint64_t bits = 0;
  for (int s = 0; s < 256; ++s) {
    total += histogram[static_cast<std::size_t>(s)];
    bits += histogram[static_cast<std::size_t>(s)] *
            lengths_[static_cast<std::size_t>(s)];
  }
  return total == 0 ? 0.0 : static_cast<double>(bits) / static_cast<double>(total);
}

void HuffmanTable::assign_canonical_codes() {
  // Canonical order: by (length, symbol).
  std::array<int, 256> order;
  for (int s = 0; s < 256; ++s) order[static_cast<std::size_t>(s)] = s;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (lengths_[static_cast<std::size_t>(a)] !=
        lengths_[static_cast<std::size_t>(b)]) {
      return lengths_[static_cast<std::size_t>(a)] <
             lengths_[static_cast<std::size_t>(b)];
    }
    return a < b;
  });
  std::uint32_t code = 0;
  int prev_len = 0;
  for (int s : order) {
    const int len = lengths_[static_cast<std::size_t>(s)];
    code <<= (len - prev_len);
    RECODE_CHECK_MSG(code < (1u << len), "huffman: code space overflow");
    codes_[static_cast<std::size_t>(s)] = static_cast<std::uint16_t>(code);
    ++code;
    prev_len = len;
  }
}

void HuffmanTable::build_decode_table() {
  for (int s = 0; s < 256; ++s) {
    const int len = lengths_[static_cast<std::size_t>(s)];
    const std::uint32_t code = codes_[static_cast<std::size_t>(s)];
    const std::uint32_t first = code << (kMaxCodeLen - len);
    const std::uint32_t count = 1u << (kMaxCodeLen - len);
    for (std::uint32_t i = 0; i < count; ++i) {
      decode_[first + i] = {static_cast<std::uint8_t>(s),
                            static_cast<std::uint8_t>(len)};
    }
  }

  // Multi-symbol table: for every window, greedily replay single-symbol
  // decodes while the next code still fits entirely in the window's
  // remaining (real) bits. Shifting the window up zero-fills the low
  // bits, but an entry whose length <= remaining bits never looked at
  // them, so the packed symbols are exactly what the scalar decoder
  // would produce from the live stream.
  constexpr std::uint32_t kWindowMask = (1u << kMaxCodeLen) - 1;
  for (std::uint32_t w = 0; w <= kWindowMask; ++w) {
    MultiEntry e{};
    int consumed = 0;
    while (e.count < 4) {
      const DecodeEntry d = decode_[(w << consumed) & kWindowMask];
      if (e.count > 0 && d.length > kMaxCodeLen - consumed) break;
      e.symbols[e.count++] = d.symbol;
      consumed += d.length;
    }
    e.bits = static_cast<std::uint8_t>(consumed);
    multi_[w] = e;
  }
}

Bytes HuffmanCodec::encode(ByteSpan input) const {
  Bytes out;
  varint_append(out, input.size());
  BitWriter writer;
  for (std::uint8_t b : input) {
    writer.write(table_->code(b), table_->length(b));
  }
  const Bytes bits = writer.finish();
  out.insert(out.end(), bits.begin(), bits.end());
  return out;
}

std::size_t HuffmanCodec::decoded_length(ByteSpan input) {
  std::size_t pos = 0;
  return static_cast<std::size_t>(
      varint_read(input.data(), input.size(), pos));
}

Bytes HuffmanCodec::decode(ByteSpan input) const {
  std::size_t pos = 0;
  const std::uint64_t count = varint_read(input.data(), input.size(), pos);
  // Untrusted count: every symbol consumes at least one bit, so a count
  // beyond the stream's bit capacity is corruption — reject it before the
  // pre-allocation instead of reserving an attacker-chosen amount.
  if (count > (static_cast<std::uint64_t>(input.size()) - pos) * 8) {
    fail("huffman: declared count exceeds stream capacity");
  }
  Bytes out;
  out.reserve(count);

  // Bit accumulator: keep >= kMaxCodeLen bits available when possible.
  const std::uint8_t* p = input.data() + pos;
  const std::size_t nbytes = input.size() - pos;
  std::uint32_t acc = 0;
  int acc_bits = 0;
  std::size_t byte_pos = 0;
  const HuffmanTable::DecodeEntry* table = table_->decode_table();

  for (std::uint64_t i = 0; i < count; ++i) {
    while (acc_bits < kMaxCodeLen && byte_pos < nbytes) {
      acc = (acc << 8) | p[byte_pos++];
      acc_bits += 8;
    }
    if (acc_bits <= 0) fail("huffman: truncated stream");
    // MSB-align the next kMaxCodeLen bits (zero-pad at stream end).
    const std::uint32_t window =
        acc_bits >= kMaxCodeLen
            ? (acc >> (acc_bits - kMaxCodeLen)) & ((1u << kMaxCodeLen) - 1)
            : (acc << (kMaxCodeLen - acc_bits)) & ((1u << kMaxCodeLen) - 1);
    const auto entry = table[window];
    if (entry.length > acc_bits) fail("huffman: truncated stream");
    acc_bits -= entry.length;
    out.push_back(entry.symbol);
  }
  return out;
}

}  // namespace recode::codec
