#include "codec/selector.h"

namespace recode::codec {

PipelineConfig select_pipeline(const sparse::MatrixStats& stats) {
  PipelineConfig cfg = PipelineConfig::udp_dsh();
  // Varint deltas win when the typical intra-row gap fits in one LEB128
  // byte (zigzag(gap) < 128 => gap <= 63) and row starts don't jump far
  // (bounded bandwidth keeps the between-row delta small too).
  const bool tight_gaps =
      stats.mean_intra_row_gap > 0 && stats.mean_intra_row_gap <= 48.0;
  const bool bounded_jumps =
      stats.bandwidth > 0 &&
      static_cast<double>(stats.bandwidth) <
          0.05 * static_cast<double>(std::max(stats.rows, stats.cols));
  if (tight_gaps && bounded_jumps) {
    cfg.index_transform = Transform::kVarintDelta;
  }
  return cfg;
}

PipelineConfig select_pipeline(const sparse::Csr& csr) {
  return select_pipeline(sparse::compute_stats(csr));
}

}  // namespace recode::codec
