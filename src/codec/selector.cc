#include "codec/selector.h"

#include "codec/registry.h"

namespace recode::codec {

PipelineConfig select_pipeline(const sparse::MatrixStats& stats) {
  PipelineConfig cfg = PipelineConfig::udp_dsh();
  // Varint deltas win when the typical intra-row gap fits in one LEB128
  // byte (zigzag(gap) < 128 => gap <= 63) and row starts don't jump far
  // (bounded bandwidth keeps the between-row delta small too).
  const bool tight_gaps =
      stats.mean_intra_row_gap > 0 && stats.mean_intra_row_gap <= 48.0;
  const bool bounded_jumps =
      stats.bandwidth > 0 &&
      static_cast<double>(stats.bandwidth) <
          0.05 * static_cast<double>(std::max(stats.rows, stats.cols));
  if (tight_gaps && bounded_jumps) {
    cfg.index_transform = Transform::kVarintDelta;
  }
  return cfg;
}

PipelineConfig select_pipeline(const sparse::Csr& csr) {
  return select_pipeline(sparse::compute_stats(csr));
}

CodecId select_block_codec(const sparse::BlockStats& stats,
                           const PipelineConfig& cfg) {
  BlockCodec c{cfg.index_transform, cfg.value_transform, cfg.snappy,
               cfg.huffman};
  // Index stream: when ~all successive deltas zigzag into one LEB128
  // byte, varint-delta stores the block in ~a quarter of the fixed-width
  // words; otherwise the fixed-width delta stays the safe default
  // (varint can expand scattered indices to 5 bytes per delta).
  if (stats.count >= 2 && stats.fraction_small_gaps >= 0.9) {
    c.index_transform = Transform::kVarintDelta;
  } else {
    c.index_transform = Transform::kDelta32;
  }
  // Value stream: plane-major regrouping pays when the block shares a
  // handful of sign/exponent patterns (real-valued data of one scale) —
  // the top-byte planes become long runs. Constant blocks are already
  // Snappy's best case; transposing would only break the 8-byte repeats.
  if (!stats.constant_values && stats.count >= 64 &&
      stats.distinct_exponents * 8 <= stats.count) {
    c.value_transform = Transform::kByteTranspose;
  }
  return codec_id(c);
}

}  // namespace recode::codec
