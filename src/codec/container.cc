#include "codec/container.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "codec/registry.h"
#include "common/error.h"
#include "common/varint.h"

namespace recode::codec {

namespace {

constexpr char kMagic[4] = {'R', 'C', 'M', '1'};

void put_bytes(std::ostream& out, const void* data, std::size_t size) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
}

template <typename T>
void put_pod(std::ostream& out, T v) {
  put_bytes(out, &v, sizeof(v));
}

void put_varint(std::ostream& out, std::uint64_t v) {
  Bytes buf;
  varint_append(buf, v);
  put_bytes(out, buf.data(), buf.size());
}

void put_blob(std::ostream& out, const Bytes& data) {
  put_varint(out, data.size());
  put_bytes(out, data.data(), data.size());
}

void get_bytes(std::istream& in, void* data, std::size_t size) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(in.gcount()) != size) {
    fail("rcm: truncated container");
  }
}

template <typename T>
T get_pod(std::istream& in) {
  T v;
  get_bytes(in, &v, sizeof(v));
  return v;
}

std::uint64_t get_varint(std::istream& in) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = in.get();
    if (c == EOF) fail("rcm: truncated varint");
    if (shift >= 64) fail("rcm: overlong varint");
    v |= static_cast<std::uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) return v;
    shift += 7;
  }
}

// Bytes left between the stream's read position and its end, or SIZE_MAX
// when the stream is not seekable. Used to sanity-bound untrusted counts
// before allocating for them.
std::size_t remaining_bytes(std::istream& in) {
  const std::istream::pos_type here = in.tellg();
  if (here == std::istream::pos_type(-1)) return SIZE_MAX;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(here);
  if (end == std::istream::pos_type(-1) || end < here) return SIZE_MAX;
  return static_cast<std::size_t>(end - here);
}

Bytes get_blob(std::istream& in) {
  const std::uint64_t size = get_varint(in);
  if (size > remaining_bytes(in)) fail("rcm: blob length exceeds stream");
  Bytes data(size);
  get_bytes(in, data.data(), data.size());
  return data;
}

// Stream position as an unsigned file offset; fails when the stream is
// not seekable (the index and layout paths need real offsets).
std::uint64_t tell_out(std::ostream& out) {
  const std::ostream::pos_type p = out.tellp();
  if (p == std::ostream::pos_type(-1)) {
    fail("rcm: index requires a seekable stream");
  }
  return static_cast<std::uint64_t>(p);
}

std::uint64_t tell_in(std::istream& in) {
  const std::istream::pos_type p = in.tellg();
  if (p == std::istream::pos_type(-1)) {
    fail("rcm: layout requires a seekable stream");
  }
  return static_cast<std::uint64_t>(p);
}

}  // namespace

void write_container_header(std::ostream& out, const CompressedMatrix& cm) {
  put_bytes(out, kMagic, 4);
  put_pod<std::uint32_t>(out, kContainerVersion);
  put_pod<std::int32_t>(out, cm.rows);
  put_pod<std::int32_t>(out, cm.cols);
  put_pod<std::uint64_t>(out, cm.config.nnz_per_block);
  put_pod<std::uint8_t>(out, static_cast<std::uint8_t>(cm.config.index_transform));
  put_pod<std::uint8_t>(out, static_cast<std::uint8_t>(cm.config.value_transform));
  put_pod<std::uint8_t>(out, cm.config.snappy ? 1 : 0);
  put_pod<std::uint8_t>(out, cm.config.huffman ? 1 : 0);
  put_pod<std::uint8_t>(out, static_cast<std::uint8_t>(cm.config.selection));
  put_pod<double>(out, cm.config.huffman_sample_fraction);
  put_pod<std::uint64_t>(out, cm.config.sample_seed);

  // row_ptr as varint first-differences (monotone, so deltas are >= 0).
  put_varint(out, cm.row_ptr.size());
  sparse::offset_t prev = 0;
  for (const sparse::offset_t p : cm.row_ptr) {
    RECODE_CHECK(p >= prev);
    put_varint(out, static_cast<std::uint64_t>(p - prev));
    prev = p;
  }

  if (cm.config.huffman) {
    RECODE_CHECK(cm.index_table && cm.value_table);
    const Bytes it = cm.index_table->serialize();
    const Bytes vt = cm.value_table->serialize();
    put_bytes(out, it.data(), it.size());
    put_bytes(out, vt.data(), vt.size());
  }
}

void write_compressed(std::ostream& out, const CompressedMatrix& cm,
                      bool with_index) {
  write_container_header(out, cm);
  put_varint(out, cm.blocks.size());
  BlockIndex index;
  if (with_index) index.offsets.reserve(cm.blocks.size() + 1);
  for (std::size_t b = 0; b < cm.blocks.size(); ++b) {
    if (with_index) {
      index.offsets.push_back(tell_out(out));
      index.codec_ids.push_back(cm.block_codec_id(b));
    }
    put_pod<std::uint8_t>(out, cm.block_codec_id(b));
    put_blob(out, cm.blocks[b].index_data);
    put_blob(out, cm.blocks[b].value_data);
  }
  if (with_index) {
    const std::uint64_t index_offset = tell_out(out);
    index.offsets.push_back(index_offset);
    for (const std::uint64_t off : index.offsets) {
      put_pod<std::uint64_t>(out, off);
    }
    put_bytes(out, index.codec_ids.data(), index.codec_ids.size());
    put_pod<std::uint64_t>(out, index_offset);
    put_bytes(out, kIndexFooterMagic, sizeof(kIndexFooterMagic));
  }
  if (!out) fail("rcm: write failed");
}

namespace {

// Everything before the block records: magic through the block count,
// with all header validations, blocking plan, and the uniform
// block_codecs default. Leaves the stream positioned at the first
// block record. Returns the container version and block count.
struct HeaderInfo {
  std::uint32_t version = 0;
  std::uint64_t block_count = 0;
};

HeaderInfo read_header(std::istream& in, CompressedMatrix& cm) {
  char magic[4];
  get_bytes(in, magic, 4);
  if (std::memcmp(magic, kMagic, 4) != 0) fail("rcm: bad magic");
  const auto version = get_pod<std::uint32_t>(in);
  if (version != kContainerVersionV1 && version != kContainerVersion) {
    fail("rcm: unsupported version " + std::to_string(version));
  }

  cm.rows = get_pod<std::int32_t>(in);
  cm.cols = get_pod<std::int32_t>(in);
  if (cm.rows < 0 || cm.cols < 0) fail("rcm: negative dimensions");
  cm.config.nnz_per_block = get_pod<std::uint64_t>(in);
  if (cm.config.nnz_per_block == 0) fail("rcm: zero block size");
  // Decoders size per-block scratch buffers from this field; cap it so a
  // tampered header cannot demand absurd allocations (16M nnz = 128 MB of
  // values per block, far beyond any real configuration).
  if (cm.config.nnz_per_block > (1u << 24)) fail("rcm: block size too large");
  const auto it_raw = get_pod<std::uint8_t>(in);
  const auto vt_raw = get_pod<std::uint8_t>(in);
  // v1 predates the byte-transposition value transform (id 3).
  if (it_raw > 2 || vt_raw > (version == kContainerVersionV1 ? 2 : 3)) {
    fail("rcm: unknown transform");
  }
  cm.config.index_transform = static_cast<Transform>(it_raw);
  cm.config.value_transform = static_cast<Transform>(vt_raw);
  cm.config.snappy = get_pod<std::uint8_t>(in) != 0;
  cm.config.huffman = get_pod<std::uint8_t>(in) != 0;
  if (version >= kContainerVersion) {
    const auto sel_raw = get_pod<std::uint8_t>(in);
    if (sel_raw > 2) fail("rcm: unknown codec selection mode");
    cm.config.selection = static_cast<CodecSelection>(sel_raw);
  }
  cm.config.huffman_sample_fraction = get_pod<double>(in);
  cm.config.sample_seed = get_pod<std::uint64_t>(in);

  const std::uint64_t row_count = get_varint(in);
  if (row_count != static_cast<std::uint64_t>(cm.rows) + 1) {
    fail("rcm: row_ptr count mismatch");
  }
  // Every row_ptr delta takes at least one stream byte, so a row count
  // beyond the remaining stream is corruption — check before resizing.
  if (row_count > remaining_bytes(in)) {
    fail("rcm: row_ptr count exceeds stream");
  }
  cm.row_ptr.resize(row_count);
  sparse::offset_t acc = 0;
  for (auto& p : cm.row_ptr) {
    const std::uint64_t delta = get_varint(in);
    if (delta > static_cast<std::uint64_t>(
                    std::numeric_limits<sparse::offset_t>::max() - acc)) {
      fail("rcm: row_ptr overflow");
    }
    acc += static_cast<sparse::offset_t>(delta);
    p = acc;
  }
  if (!cm.row_ptr.empty() && cm.row_ptr.front() != 0) {
    fail("rcm: row_ptr must start at 0");
  }

  if (cm.config.huffman) {
    Bytes it(128), vt(128);
    get_bytes(in, it.data(), it.size());
    get_bytes(in, vt.data(), vt.size());
    cm.index_table =
        std::make_shared<const HuffmanTable>(HuffmanTable::deserialize(it));
    cm.value_table =
        std::make_shared<const HuffmanTable>(HuffmanTable::deserialize(vt));
  }

  const std::uint64_t block_count = get_varint(in);
  // Validate the count arithmetically before make_blocking allocates a
  // plan sized by it: a tampered row_ptr tail would otherwise drive a
  // huge reservation. Each block also needs >= 2 stream bytes (two blob
  // length prefixes), so the count is bounded by the remaining stream.
  const auto nnz = static_cast<std::uint64_t>(cm.row_ptr.back());
  const std::uint64_t expected_blocks =
      (nnz + cm.config.nnz_per_block - 1) / cm.config.nnz_per_block;
  if (block_count != expected_blocks) {
    fail("rcm: block count disagrees with row_ptr/nnz_per_block");
  }
  if (block_count > remaining_bytes(in)) {
    fail("rcm: block count exceeds stream");
  }
  cm.blocking =
      sparse::make_blocking(std::span<const sparse::offset_t>(cm.row_ptr),
                            cm.config.nnz_per_block);
  cm.block_codecs.assign(block_count, codec_id_for(cm.config));
  return {version, block_count};
}

}  // namespace

CompressedMatrix read_compressed(std::istream& in) {
  CompressedMatrix cm;
  const HeaderInfo hdr = read_header(in, cm);
  cm.blocks.resize(hdr.block_count);
  for (std::size_t b = 0; b < hdr.block_count; ++b) {
    if (hdr.version >= kContainerVersion) {
      cm.block_codecs[b] = get_pod<std::uint8_t>(in);
    }
    cm.blocks[b].index_data = get_blob(in);
    cm.blocks[b].value_data = get_blob(in);
  }
  // Validate every per-block id through the registry gate before handing
  // the matrix to a decode engine: unknown ids and huffman-stage ids in a
  // tableless container fail here with the engines' exact messages.
  for (std::size_t b = 0; b < hdr.block_count; ++b) block_codec_checked(cm, b);
  for (const auto& b : cm.blocks) {
    cm.index_stages.after_huffman += b.index_data.size();
    cm.value_stages.after_huffman += b.value_data.size();
  }
  return cm;
}

namespace {

// Loads the footer index when the file ends with one. Returns false
// when there is no footer (caller falls back to scanning); throws on a
// footer whose arithmetic or offsets are inconsistent — a present but
// broken index is corruption, not a missing feature.
bool try_read_footer_index(std::istream& in, std::uint64_t file_size,
                           std::uint64_t block_section_offset,
                           std::uint64_t block_count, BlockIndex& index) {
  if (file_size < block_section_offset + kIndexFooterBytes) return false;
  in.clear();
  in.seekg(static_cast<std::streamoff>(file_size - kIndexFooterBytes));
  const auto index_offset = get_pod<std::uint64_t>(in);
  char magic[sizeof(kIndexFooterMagic)];
  get_bytes(in, magic, sizeof(magic));
  if (std::memcmp(magic, kIndexFooterMagic, sizeof(magic)) != 0) return false;

  // (n + 1) u64 offsets + n codec-id bytes + the footer itself must end
  // exactly at EOF, and the section must sit after the block records.
  const std::uint64_t index_bytes = (block_count + 1) * 8 + block_count;
  if (index_offset < block_section_offset ||
      index_offset + index_bytes + kIndexFooterBytes != file_size) {
    fail("rcm: index footer arithmetic mismatch");
  }
  in.seekg(static_cast<std::streamoff>(index_offset));
  index.offsets.resize(block_count + 1);
  for (auto& off : index.offsets) off = get_pod<std::uint64_t>(in);
  index.codec_ids.resize(block_count);
  if (block_count > 0) {
    get_bytes(in, index.codec_ids.data(), index.codec_ids.size());
  }
  if (index.offsets.front() != block_section_offset) {
    fail("rcm: index does not start at block section");
  }
  if (index.offsets.back() != index_offset) {
    fail("rcm: index offsets exceed block section");
  }
  for (std::size_t b = 0; b < block_count; ++b) {
    // Strictly increasing: every record is at least its codec-id byte
    // plus two length prefixes, so equal or reordered offsets mean
    // overlapping extents.
    if (index.offsets[b + 1] <= index.offsets[b]) {
      fail("rcm: index offsets not increasing");
    }
  }
  index.from_footer = true;
  return true;
}

// Rebuilds the index with one forward scan of the record framing
// (codec-id byte + two length-prefixed blobs), seeking past payloads.
BlockIndex scan_block_index(std::istream& in, std::uint64_t file_size,
                            std::uint32_t version, std::uint64_t block_count,
                            const CompressedMatrix& cm) {
  BlockIndex index;
  index.offsets.reserve(block_count + 1);
  index.codec_ids.reserve(block_count);
  for (std::uint64_t b = 0; b < block_count; ++b) {
    index.offsets.push_back(tell_in(in));
    std::uint8_t id = cm.block_codec_id(static_cast<std::size_t>(b));
    if (version >= kContainerVersion) id = get_pod<std::uint8_t>(in);
    index.codec_ids.push_back(id);
    for (int stream = 0; stream < 2; ++stream) {
      const std::uint64_t len = get_varint(in);
      const std::uint64_t here = tell_in(in);
      if (len > file_size - here) fail("rcm: blob length exceeds stream");
      in.seekg(static_cast<std::streamoff>(len), std::ios::cur);
    }
  }
  index.offsets.push_back(tell_in(in));
  index.from_footer = false;
  return index;
}

}  // namespace

ContainerLayout read_container_layout(std::istream& in) {
  ContainerLayout layout;
  const std::istream::pos_type start = in.tellg();
  if (start == std::istream::pos_type(-1)) {
    fail("rcm: layout requires a seekable stream");
  }
  in.seekg(0, std::ios::end);
  layout.file_size = tell_in(in);
  in.seekg(start);

  const HeaderInfo hdr = read_header(in, layout.matrix);
  layout.version = hdr.version;
  layout.block_section_offset = tell_in(in);
  if (!try_read_footer_index(in, layout.file_size,
                             layout.block_section_offset, hdr.block_count,
                             layout.index)) {
    in.clear();
    in.seekg(static_cast<std::streamoff>(layout.block_section_offset));
    layout.index = scan_block_index(in, layout.file_size, hdr.version,
                                    hdr.block_count, layout.matrix);
  }
  // The layout's codec ids are authoritative for header-only use; run
  // them through the same registry gate read_compressed applies.
  layout.matrix.block_codecs.assign(layout.index.codec_ids.begin(),
                                    layout.index.codec_ids.end());
  for (std::size_t b = 0; b < layout.index.block_count(); ++b) {
    block_codec_checked(layout.matrix, b);
  }
  return layout;
}

void write_compressed_file(const std::string& path, const CompressedMatrix& cm,
                           bool with_index) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("rcm: cannot open for write: " + path);
  write_compressed(out, cm, with_index);
}

CompressedMatrix read_compressed_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("rcm: cannot open: " + path);
  try {
    return read_compressed(in);
  } catch (const Error& e) {
    fail(std::string(e.what()) + " (file: " + path + ")");
  }
}

ContainerLayout read_container_layout_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("rcm: cannot open: " + path);
  try {
    return read_container_layout(in);
  } catch (const Error& e) {
    fail(std::string(e.what()) + " (file: " + path + ")");
  }
}

}  // namespace recode::codec
