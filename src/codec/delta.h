// First-difference (delta) transform over 32-bit little-endian integers.
//
// Used on the col_idx stream: within a CSR row the column indices are
// increasing, so deltas are small positive integers, and across banded /
// diagonal structures they repeat — exactly the redundancy Snappy's LZ
// matcher then exploits. As the paper notes (§IV-B), delta alone provides
// no size benefit (output size == input size); it only amplifies the
// downstream compressor.
#pragma once

#include "codec/codec.h"

namespace recode::codec {

class DeltaCodec final : public Codec {
 public:
  std::string name() const override { return "delta32"; }

  // input.size() must be a multiple of 4. Output is the same size: the
  // first word verbatim, then zigzag(value[i] - value[i-1]) as LE32.
  Bytes encode(ByteSpan input) const override;
  Bytes decode(ByteSpan input) const override;
};

}  // namespace recode::codec
