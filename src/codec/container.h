// On-disk container for compressed matrices (".rcm").
//
// Persists everything decompress() needs: dimensions, pipeline config,
// the trained Huffman tables, the (varint-delta coded) row_ptr, and the
// per-block compressed streams. Compress once offline, mmap/stream at
// run time — the deployment model the paper assumes (matrices are
// compressed ahead of time; only decompression is on the critical path).
//
// Layout v2 (little-endian) — written by write_compressed:
//   magic "RCM1" | u32 version (= 2)
//   i32 rows | i32 cols | u64 nnz_per_block
//   u8 index_transform | u8 value_transform | u8 snappy | u8 huffman
//   u8 selection                      (CodecSelection; new in v2)
//   f64 huffman_sample_fraction | u64 sample_seed
//   varint row count, then varint deltas of row_ptr
//   [if huffman] 128 B index table | 128 B value table
//   varint block count, then per block:
//     u8 codec_id                     (registry packed id; new in v2)
//     varint index bytes | data | varint value bytes | data
//
// v1 (version = 1) lacks the selection byte and the per-block codec-id
// byte: every block implicitly uses the config's single pipeline.
// read_compressed still accepts v1 and synthesizes the uniform
// block_codecs vector, so pre-registry .rcm files keep loading bitwise
// (the golden-fixture regression test pins this).
//
// Per-block codec ids are validated on read through the registry gate
// (codec/registry.h): reserved bits, out-of-range fields, or a
// huffman-stage id in a container without tables throw recode::Error
// with the same messages the decode engines use.
//
// Block-offset index (optional, written by write_compressed with
// with_index = true): read_compressed stops after the last block
// record and ignores trailing bytes, so the index appends without a
// version bump. Layout, immediately after the block records:
//   u64 offsets[block_count + 1]    absolute file offsets; offsets[b]
//                                   is the start of record b (its
//                                   codec-id byte), offsets[count] is
//                                   the start of this index section
//   u8  codec_ids[block_count]
// then a 16-byte footer terminating the file:
//   u64 index_offset | char magic[8] = "RCMXIDX1"
// Out-of-core sources locate any block's compressed extent from the
// index without scanning; files without a footer get the index
// reconstructed by a single forward scan of the record framing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "codec/pipeline.h"

namespace recode::codec {

inline constexpr std::uint32_t kContainerVersionV1 = 1;
inline constexpr std::uint32_t kContainerVersion = 2;

inline constexpr char kIndexFooterMagic[8] = {'R', 'C', 'M', 'X',
                                              'I', 'D', 'X', '1'};
inline constexpr std::size_t kIndexFooterBytes = 16;

// Where every block record lives in the container file. offsets has
// block_count + 1 entries (offsets[b] = file position of record b's
// codec-id byte; the final entry is one past the last record, i.e. the
// index section start when the file carries one).
struct BlockIndex {
  std::vector<std::uint64_t> offsets;
  std::vector<std::uint8_t> codec_ids;
  bool from_footer = false;  // false = reconstructed by scanning

  std::size_t block_count() const { return codec_ids.size(); }
  std::uint64_t extent_bytes(std::size_t b) const {
    return offsets[b + 1] - offsets[b];
  }
};

// Header-only view of a container: everything read_compressed parses
// except the block payloads (matrix.blocks stays empty; block_codecs
// and blocking are populated), plus the block-offset index. This is
// what an out-of-core ContainerSource opens — O(header + index) memory
// regardless of matrix size.
struct ContainerLayout {
  CompressedMatrix matrix;
  BlockIndex index;
  std::uint32_t version = kContainerVersion;
  std::uint64_t file_size = 0;
  std::uint64_t block_section_offset = 0;
};

// The header section shared by write_compressed and the streaming
// writer (container_writer.h): magic through the Huffman tables, i.e.
// everything before the varint block count.
void write_container_header(std::ostream& out, const CompressedMatrix& cm);

// with_index appends the block-offset index + footer after the block
// records (requires a seekable output stream). The default keeps the
// historical byte-exact layout.
void write_compressed(std::ostream& out, const CompressedMatrix& cm,
                      bool with_index = false);
void write_compressed_file(const std::string& path, const CompressedMatrix& cm,
                           bool with_index = false);

// Throws recode::Error on bad magic, version, or truncation.
// read_compressed_file reports `path` in every error message.
CompressedMatrix read_compressed(std::istream& in);
CompressedMatrix read_compressed_file(const std::string& path);

// Parses the header and locates every block without reading payloads.
// Uses the footer index when present (validating offsets against the
// file size and monotonicity), otherwise reconstructs it by scanning
// the record framing. Requires a seekable stream; throws recode::Error
// on any corruption. The _file variant reports `path` in errors.
ContainerLayout read_container_layout(std::istream& in);
ContainerLayout read_container_layout_file(const std::string& path);

}  // namespace recode::codec
