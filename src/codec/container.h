// On-disk container for compressed matrices (".rcm").
//
// Persists everything decompress() needs: dimensions, pipeline config,
// the trained Huffman tables, the (varint-delta coded) row_ptr, and the
// per-block compressed streams. Compress once offline, mmap/stream at
// run time — the deployment model the paper assumes (matrices are
// compressed ahead of time; only decompression is on the critical path).
//
// Layout (little-endian):
//   magic "RCM1" | u32 version
//   i32 rows | i32 cols | u64 nnz_per_block
//   u8 index_transform | u8 value_transform | u8 snappy | u8 huffman
//   f64 huffman_sample_fraction | u64 sample_seed
//   varint row count, then varint deltas of row_ptr
//   [if huffman] 128 B index table | 128 B value table
//   varint block count, then per block:
//     varint index bytes | data | varint value bytes | data
#pragma once

#include <iosfwd>
#include <string>

#include "codec/pipeline.h"

namespace recode::codec {

inline constexpr std::uint32_t kContainerVersion = 1;

void write_compressed(std::ostream& out, const CompressedMatrix& cm);
void write_compressed_file(const std::string& path,
                           const CompressedMatrix& cm);

// Throws recode::Error on bad magic, version, or truncation.
CompressedMatrix read_compressed(std::istream& in);
CompressedMatrix read_compressed_file(const std::string& path);

}  // namespace recode::codec
