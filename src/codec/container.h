// On-disk container for compressed matrices (".rcm").
//
// Persists everything decompress() needs: dimensions, pipeline config,
// the trained Huffman tables, the (varint-delta coded) row_ptr, and the
// per-block compressed streams. Compress once offline, mmap/stream at
// run time — the deployment model the paper assumes (matrices are
// compressed ahead of time; only decompression is on the critical path).
//
// Layout v2 (little-endian) — written by write_compressed:
//   magic "RCM1" | u32 version (= 2)
//   i32 rows | i32 cols | u64 nnz_per_block
//   u8 index_transform | u8 value_transform | u8 snappy | u8 huffman
//   u8 selection                      (CodecSelection; new in v2)
//   f64 huffman_sample_fraction | u64 sample_seed
//   varint row count, then varint deltas of row_ptr
//   [if huffman] 128 B index table | 128 B value table
//   varint block count, then per block:
//     u8 codec_id                     (registry packed id; new in v2)
//     varint index bytes | data | varint value bytes | data
//
// v1 (version = 1) lacks the selection byte and the per-block codec-id
// byte: every block implicitly uses the config's single pipeline.
// read_compressed still accepts v1 and synthesizes the uniform
// block_codecs vector, so pre-registry .rcm files keep loading bitwise
// (the golden-fixture regression test pins this).
//
// Per-block codec ids are validated on read through the registry gate
// (codec/registry.h): reserved bits, out-of-range fields, or a
// huffman-stage id in a container without tables throw recode::Error
// with the same messages the decode engines use.
#pragma once

#include <iosfwd>
#include <string>

#include "codec/pipeline.h"

namespace recode::codec {

inline constexpr std::uint32_t kContainerVersionV1 = 1;
inline constexpr std::uint32_t kContainerVersion = 2;

void write_compressed(std::ostream& out, const CompressedMatrix& cm);
void write_compressed_file(const std::string& path,
                           const CompressedMatrix& cm);

// Throws recode::Error on bad magic, version, or truncation.
CompressedMatrix read_compressed(std::istream& in);
CompressedMatrix read_compressed_file(const std::string& path);

}  // namespace recode::codec
