#include "codec/delta.h"

#include <cstring>

#include "common/error.h"


namespace recode::codec {

namespace {

std::uint32_t load_le32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;  // host is little-endian (x86); format is LE by definition
}

void store_le32(Bytes& out, std::uint32_t v) {
  const std::size_t n = out.size();
  out.resize(n + 4);
  std::memcpy(out.data() + n, &v, 4);
}

}  // namespace

namespace {

// 32-bit zigzag over wrap-around deltas: any int32 sequence round-trips
// because both the difference and the prefix sum are taken mod 2^32.
std::uint32_t zigzag32(std::uint32_t d) {
  return (d << 1) ^ static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(d) >> 31);
}

std::uint32_t unzigzag32(std::uint32_t z) {
  return (z >> 1) ^ (~(z & 1) + 1);
}

}  // namespace

Bytes DeltaCodec::encode(ByteSpan input) const {
  if (input.size() % 4 != 0) fail("delta32: input not a multiple of 4 bytes");
  Bytes out;
  out.reserve(input.size());
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < input.size(); i += 4) {
    const std::uint32_t v = load_le32(input.data() + i);
    store_le32(out, zigzag32(v - prev));
    prev = v;
  }
  return out;
}

Bytes DeltaCodec::decode(ByteSpan input) const {
  if (input.size() % 4 != 0) fail("delta32: input not a multiple of 4 bytes");
  Bytes out;
  out.reserve(input.size());
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < input.size(); i += 4) {
    acc += unzigzag32(load_le32(input.data() + i));
    store_le32(out, acc);
  }
  return out;
}

}  // namespace recode::codec
