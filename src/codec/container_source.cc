#include "codec/container_source.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define RECODE_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define RECODE_HAVE_POSIX_IO 0
#endif

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/timer.h"
#include "telemetry/ledger.h"

namespace recode::codec {

namespace {

std::uint64_t elapsed_ns(const Timer& t) {
  return static_cast<std::uint64_t>(t.seconds() * 1e9);
}

// The storage hop: the on-disk extent (record framing included) enters,
// the payload plus the codec-id dispatch byte leaves — exactly what the
// container hop records as its input for the same block, so the
// storage -> container edge conservation-checks per block.
void ledger_storage_block(std::size_t extent_bytes, std::size_t payload_bytes) {
  telemetry::MovementLedger::global().flow(telemetry::Hop::kStorage,
                                           extent_bytes, payload_bytes + 1);
}

std::uint64_t parse_varint(const std::uint8_t*& p, const std::uint8_t* end) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (p == end) fail("rcm: truncated varint");
    if (shift >= 64) fail("rcm: overlong varint");
    const std::uint8_t c = *p++;
    v |= static_cast<std::uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) return v;
    shift += 7;
  }
}

// A block's compressed extent, as located by the index, must contain
// exactly [codec-id byte (v2)] | varint len | index bytes | varint len |
// value bytes. Anything else — id disagreeing with the index, lengths
// running past the extent, trailing slack — is corruption.
struct ParsedRecord {
  SourceBlockBytes spans;
  std::size_t payload_bytes = 0;
};

ParsedRecord parse_record(const std::uint8_t* data, std::size_t size,
                          std::uint32_t version, std::uint8_t expect_id) {
  const std::uint8_t* p = data;
  const std::uint8_t* const end = data + size;
  if (version >= kContainerVersion) {
    if (p == end) fail("rcm: truncated container");
    if (*p != expect_id) fail("rcm: codec id disagrees with index");
    ++p;
  }
  ParsedRecord rec;
  for (int stream = 0; stream < 2; ++stream) {
    const std::uint64_t len = parse_varint(p, end);
    if (len > static_cast<std::uint64_t>(end - p)) {
      fail("rcm: blob length exceeds stream");
    }
    ByteSpan span{p, static_cast<std::size_t>(len)};
    (stream == 0 ? rec.spans.index_data : rec.spans.value_data) = span;
    rec.payload_bytes += span.size();
    p += len;
  }
  if (p != end) fail("rcm: block record does not fill its index extent");
  return rec;
}

class ResidentSource final : public ContainerSource {
 public:
  explicit ResidentSource(const CompressedMatrix& cm) : cm_(&cm) {}
  ResidentSource(std::shared_ptr<const CompressedMatrix> cm)
      : cm_(cm.get()), keepalive_(std::move(cm)) {}

  SourceKind kind() const override { return SourceKind::kResident; }

  SourceBlockBytes block(std::size_t b) override {
    RECODE_CHECK(b < cm_->blocks.size());
    blocks_served_.fetch_add(1, std::memory_order_relaxed);
    return {cm_->blocks[b].index_data, cm_->blocks[b].value_data};
  }

  SourceStats stats() const override {
    SourceStats s;
    s.blocks_served = blocks_served_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  const CompressedMatrix* cm_;
  std::shared_ptr<const CompressedMatrix> keepalive_;
  std::atomic<std::uint64_t> blocks_served_{0};
};

#if RECODE_HAVE_POSIX_IO

class MmapSource final : public ContainerSource {
 public:
  MmapSource(const std::string& path, BlockIndex index, std::uint32_t version)
      : path_(path), index_(std::move(index)), version_(version) {
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) fail("rcm: cannot open: " + path);
    struct stat st {};
    if (::fstat(fd_, &st) != 0) {
      ::close(fd_);
      fail("rcm: cannot stat: " + path);
    }
    size_ = static_cast<std::uint64_t>(st.st_size);
    if (!index_.offsets.empty() && index_.offsets.back() > size_) {
      ::close(fd_);
      fail("rcm: index offsets exceed file: " + path);
    }
    if (size_ > 0) {
      void* m = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd_, 0);
      if (m == MAP_FAILED) {
        ::close(fd_);
        fail("rcm: mmap failed: " + path);
      }
      map_ = static_cast<const std::uint8_t*>(m);
    }
  }

  ~MmapSource() override {
    if (map_ != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(map_), static_cast<size_t>(size_));
    }
    if (fd_ >= 0) ::close(fd_);
  }

  SourceKind kind() const override { return SourceKind::kMmap; }

  void prefetch(std::size_t first, std::size_t count) override {
    if (count == 0 || map_ == nullptr) return;
    const std::uint64_t off = index_.offsets[first];
    const std::uint64_t len = index_.offsets[first + count] - off;
    // Touch-ahead: page-align the hint and let the kernel read ahead
    // asynchronously while the current band decodes.
    const std::uint64_t page = 4096;
    const std::uint64_t a_off = off & ~(page - 1);
    const std::uint64_t a_len = (off + len) - a_off;
    ::madvise(const_cast<std::uint8_t*>(map_) + a_off,
              static_cast<size_t>(a_len), MADV_WILLNEED);
  }

  void acquire(std::size_t first, std::size_t count) override {
    if (count == 0 || map_ == nullptr) return;
    const std::uint64_t off = index_.offsets[first];
    const std::uint64_t len = index_.offsets[first + count] - off;
    // Fault the range in now (one byte per page) so decode never stalls
    // on a major fault mid-block; the time is the storage read cost.
    Timer t;
    const std::uint8_t* p = map_ + off;
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < len; i += 4096) sum += p[i];
    if (len > 0) sum += p[len - 1];
    touch_sink_.store(sum, std::memory_order_relaxed);
    const std::uint64_t ns = elapsed_ns(t);
    telemetry::MovementLedger::global()
        .hop(telemetry::Hop::kStorage)
        .ns.add(ns);
    bytes_read_.fetch_add(len, std::memory_order_relaxed);
    read_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  SourceBlockBytes block(std::size_t b) override {
    RECODE_CHECK(b < index_.block_count());
    const std::uint64_t off = index_.offsets[b];
    const std::size_t extent = static_cast<std::size_t>(index_.extent_bytes(b));
    if (off + extent > size_) fail("rcm: block extent exceeds file: " + path_);
    const ParsedRecord rec =
        parse_record(map_ + off, extent, version_, index_.codec_ids[b]);
    ledger_storage_block(extent, rec.payload_bytes);
    blocks_served_.fetch_add(1, std::memory_order_relaxed);
    return rec.spans;
  }

  SourceStats stats() const override {
    SourceStats s;
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.read_ns = read_ns_.load(std::memory_order_relaxed);
    s.blocks_served = blocks_served_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::string path_;
  BlockIndex index_;
  std::uint32_t version_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
  const std::uint8_t* map_ = nullptr;
  std::atomic<std::uint64_t> touch_sink_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> read_ns_{0};
  std::atomic<std::uint64_t> blocks_served_{0};
};

// Windowed streamed reader: pooled buffers filled by pread, a bounded
// budget of in-flight compressed bytes, and a background IO thread that
// services prefetch hints so storage reads overlap decode. All buffers
// are recycled; after warmup (window pool grown to the concurrency the
// run actually uses, capacities grown to the largest extent) the steady
// state performs zero heap allocations.
class StreamedSource final : public ContainerSource {
 public:
  StreamedSource(const std::string& path, BlockIndex index,
                 std::uint32_t version, const StreamedOptions& opts)
      : path_(path),
        index_(std::move(index)),
        version_(version),
        budget_(opts.window_budget_bytes) {
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) fail("rcm: cannot open: " + path);
    struct stat st {};
    if (::fstat(fd_, &st) != 0) {
      ::close(fd_);
      fail("rcm: cannot stat: " + path);
    }
    file_size_ = static_cast<std::uint64_t>(st.st_size);
    if (!index_.offsets.empty() && index_.offsets.back() > file_size_) {
      ::close(fd_);
      fail("rcm: index offsets exceed file: " + path);
    }
    owner_.assign(index_.block_count(), nullptr);
    windows_.reserve(64);
    io_thread_ = std::thread([this] { io_loop(); });
  }

  ~StreamedSource() override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopping_ = true;
    }
    io_cv_.notify_all();
    io_thread_.join();
    if (fd_ >= 0) ::close(fd_);
  }

  SourceKind kind() const override { return SourceKind::kStreamed; }

  void prefetch(std::size_t first, std::size_t count) override {
    if (count == 0) return;
    RECODE_CHECK(first + count <= index_.block_count());
    std::lock_guard<std::mutex> lk(mu_);
    if (owner_[first] != nullptr) return;  // already in flight or leased
    const std::size_t bytes = range_bytes(first, count);
    const bool fits =
        in_flight_bytes_ == 0 || in_flight_bytes_ + bytes <= budget_;
    if (!fits || q_size_ == kQueueCapacity) {
      // Dropping a hint is always safe: acquire falls back to a
      // synchronous read. Never queue beyond the byte budget.
      ++stats_.prefetch_drops;
      return;
    }
    Window* w = grab_idle_locked();
    stage_locked(w, first, count, bytes, Window::State::kQueued);
    queue_push_locked(w);
    io_cv_.notify_one();
  }

  void acquire(std::size_t first, std::size_t count) override {
    if (count == 0) return;
    RECODE_CHECK(first + count <= index_.block_count());
    std::unique_lock<std::mutex> lk(mu_);
    Window* w = owner_[first];
    if (w != nullptr) {
      // Lease ranges must match the prefetch ranges exactly (both come
      // from the same band/chunk plan).
      RECODE_CHECK(w->first == first && w->count == count);
      ready_cv_.wait(lk, [&] { return w->state == Window::State::kReady; });
      if (!w->error.empty()) {
        const std::string msg = w->error;
        reset_locked(w);
        budget_cv_.notify_all();
        fail(msg);
      }
      w->state = Window::State::kInUse;
      ++stats_.prefetch_hits;
      return;
    }
    // No prefetch landed: read inline, still respecting the budget (a
    // single range larger than the whole budget proceeds alone so tiny
    // budgets serialize instead of deadlocking).
    const std::size_t bytes = range_bytes(first, count);
    budget_cv_.wait(lk, [&] {
      return in_flight_bytes_ == 0 || in_flight_bytes_ + bytes <= budget_;
    });
    w = grab_idle_locked();
    stage_locked(w, first, count, bytes, Window::State::kReading);
    ++stats_.sync_reads;
    lk.unlock();
    std::uint64_t ns = 0;
    std::string err = read_window_io(w, &ns);
    lk.lock();
    stats_.bytes_read += w->bytes;
    stats_.read_ns += ns;
    if (!err.empty()) {
      reset_locked(w);
      budget_cv_.notify_all();
      fail(err);
    }
    w->state = Window::State::kInUse;
  }

  SourceBlockBytes block(std::size_t b) override {
    std::unique_lock<std::mutex> lk(mu_);
    RECODE_CHECK(b < index_.block_count());
    Window* w = owner_[b];
    RECODE_CHECK(w != nullptr && w->state == Window::State::kInUse);
    const std::uint64_t rel = index_.offsets[b] - w->file_offset;
    const std::size_t extent = static_cast<std::size_t>(index_.extent_bytes(b));
    ++stats_.blocks_served;
    lk.unlock();
    // Parsing outside the lock is safe: the window is leased (kInUse)
    // by the calling worker and cannot be recycled underneath it.
    const ParsedRecord rec = parse_record(w->buf.get() + rel, extent,
                                          version_, index_.codec_ids[b]);
    ledger_storage_block(extent, rec.payload_bytes);
    return rec.spans;
  }

  void release(std::size_t first, std::size_t count) override {
    if (count == 0) return;
    std::lock_guard<std::mutex> lk(mu_);
    Window* w = owner_[first];
    if (w == nullptr) return;
    RECODE_CHECK(w->first == first && w->count == count);
    switch (w->state) {
      case Window::State::kQueued:
      case Window::State::kReady:
      case Window::State::kInUse:
        reset_locked(w);
        budget_cv_.notify_all();
        break;
      case Window::State::kReading:
        // The pread is in flight; the IO thread recycles on completion.
        w->discard = true;
        break;
      case Window::State::kIdle:
        break;
    }
  }

  void end_run() override {
    std::lock_guard<std::mutex> lk(mu_);
    while (q_size_ > 0) {
      Window* w = queue_pop_locked();
      if (w->state == Window::State::kQueued) reset_locked(w);
    }
    for (auto& up : windows_) {
      Window* w = up.get();
      if (w->state == Window::State::kReady) {
        reset_locked(w);
      } else if (w->state == Window::State::kReading) {
        w->discard = true;
      }
    }
    budget_cv_.notify_all();
  }

  SourceStats stats() const override {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

  std::size_t range_extent_bytes(std::size_t first,
                                 std::size_t count) const override {
    if (count == 0) return 0;
    RECODE_CHECK(first + count <= index_.block_count());
    return range_bytes(first, count);  // offsets immutable after open
  }

  void reserve(std::size_t leases, std::size_t max_lease_bytes) override {
    if (leases == 0 || max_lease_bytes == 0) return;
    // The in-flight byte budget gates staging, so never provision more
    // windows than it admits at the largest lease size (the floor rule
    // always lets one oversized window through).
    leases = std::min(leases,
                      std::max<std::size_t>(1, budget_ / max_lease_bytes));
    std::lock_guard<std::mutex> lk(mu_);
    while (windows_.size() < leases) {
      windows_.push_back(std::make_unique<Window>());
    }
    std::size_t provisioned = 0;
    for (auto& up : windows_) {
      if (provisioned == leases) break;
      if (up->capacity < max_lease_bytes) {
        up->buf = std::make_unique<std::uint8_t[]>(max_lease_bytes);
        up->capacity = max_lease_bytes;
      }
      ++provisioned;
    }
  }

 private:
  struct Window {
    std::unique_ptr<std::uint8_t[]> buf;
    std::size_t capacity = 0;
    std::size_t first = 0;
    std::size_t count = 0;
    std::uint64_t file_offset = 0;
    std::size_t bytes = 0;
    enum class State { kIdle, kQueued, kReading, kReady, kInUse };
    State state = State::kIdle;
    bool discard = false;
    std::string error;
  };

  std::size_t range_bytes(std::size_t first, std::size_t count) const {
    return static_cast<std::size_t>(index_.offsets[first + count] -
                                    index_.offsets[first]);
  }

  Window* grab_idle_locked() {
    // Largest-capacity idle window first: steady state then stages onto
    // buffers that were already grown to a band extent, so growth is
    // confined to warmup. (First-fit by pool order would let timing
    // jitter route a big extent to a never-grown window and allocate
    // long after the pool looks warm.)
    Window* best = nullptr;
    for (auto& up : windows_) {
      if (up->state != Window::State::kIdle) continue;
      if (!best || up->capacity > best->capacity) best = up.get();
    }
    if (best) return best;
    windows_.push_back(std::make_unique<Window>());  // warmup only
    return windows_.back().get();
  }

  void stage_locked(Window* w, std::size_t first, std::size_t count,
                    std::size_t bytes, Window::State state) {
    for (std::size_t b = first; b < first + count; ++b) {
      RECODE_CHECK(owner_[b] == nullptr);
      owner_[b] = w;
    }
    if (w->capacity < bytes) {
      const std::size_t cap = std::max(bytes, w->capacity * 2);
      w->buf = std::make_unique<std::uint8_t[]>(cap);
      w->capacity = cap;
    }
    w->first = first;
    w->count = count;
    w->file_offset = index_.offsets[first];
    w->bytes = bytes;
    w->error.clear();
    w->discard = false;
    w->state = state;
    in_flight_bytes_ += bytes;
    stats_.peak_window_bytes =
        std::max<std::uint64_t>(stats_.peak_window_bytes, in_flight_bytes_);
  }

  void reset_locked(Window* w) {
    for (std::size_t b = w->first; b < w->first + w->count; ++b) {
      if (owner_[b] == w) owner_[b] = nullptr;
    }
    in_flight_bytes_ -= w->bytes;
    w->count = 0;
    w->bytes = 0;
    w->discard = false;
    w->error.clear();
    w->state = Window::State::kIdle;
  }

  void queue_push_locked(Window* w) {
    RECODE_CHECK(q_size_ < kQueueCapacity);
    queue_[q_tail_] = w;
    q_tail_ = (q_tail_ + 1) % kQueueCapacity;
    ++q_size_;
  }

  Window* queue_pop_locked() {
    RECODE_CHECK(q_size_ > 0);
    Window* w = queue_[q_head_];
    q_head_ = (q_head_ + 1) % kQueueCapacity;
    --q_size_;
    return w;
  }

  // pread the staged extent; returns an error message on failure.
  std::string read_window_io(Window* w, std::uint64_t* ns_out) {
    Timer t;
    std::size_t done = 0;
    while (done < w->bytes) {
      const ssize_t n =
          ::pread(fd_, w->buf.get() + done, w->bytes - done,
                  static_cast<off_t>(w->file_offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return "rcm: read failed at offset " +
               std::to_string(w->file_offset + done) + ": " + path_;
      }
      if (n == 0) {
        return "rcm: short read (truncated container): " + path_;
      }
      done += static_cast<std::size_t>(n);
    }
    *ns_out = elapsed_ns(t);
    telemetry::MovementLedger::global()
        .hop(telemetry::Hop::kStorage)
        .ns.add(*ns_out);
    return {};
  }

  void io_loop() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      io_cv_.wait(lk, [&] { return stopping_ || q_size_ > 0; });
      if (stopping_) return;
      Window* w = queue_pop_locked();
      if (w->state != Window::State::kQueued) continue;  // discarded entry
      w->state = Window::State::kReading;
      lk.unlock();
      std::uint64_t ns = 0;
      std::string err = read_window_io(w, &ns);
      lk.lock();
      stats_.bytes_read += w->bytes;
      stats_.read_ns += ns;
      if (w->discard) {
        reset_locked(w);
        budget_cv_.notify_all();
      } else {
        w->error = std::move(err);
        w->state = Window::State::kReady;
        ready_cv_.notify_all();
      }
    }
  }

  static constexpr std::size_t kQueueCapacity = 256;

  std::string path_;
  BlockIndex index_;
  std::uint32_t version_;
  std::size_t budget_;
  int fd_ = -1;
  std::uint64_t file_size_ = 0;

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::condition_variable budget_cv_;
  std::condition_variable io_cv_;
  std::vector<std::unique_ptr<Window>> windows_;
  std::vector<Window*> owner_;
  Window* queue_[kQueueCapacity] = {};
  std::size_t q_head_ = 0;
  std::size_t q_tail_ = 0;
  std::size_t q_size_ = 0;
  std::size_t in_flight_bytes_ = 0;
  bool stopping_ = false;
  SourceStats stats_;
  std::thread io_thread_;
};

#endif  // RECODE_HAVE_POSIX_IO

}  // namespace

const char* source_kind_name(SourceKind kind) {
  switch (kind) {
    case SourceKind::kResident: return "resident";
    case SourceKind::kMmap: return "mmap";
    case SourceKind::kStreamed: return "streamed";
  }
  return "?";
}

std::shared_ptr<ContainerSource> make_resident_source(
    const CompressedMatrix& cm) {
  return std::make_shared<ResidentSource>(cm);
}

OpenedContainer open_container(const std::string& path, SourceKind kind,
                               const StreamedOptions& opts) {
  OpenedContainer oc;
  oc.kind = kind;
  ContainerLayout layout = read_container_layout_file(path);
  oc.index = layout.index;
  oc.version = layout.version;
  oc.file_size = layout.file_size;
  switch (kind) {
    case SourceKind::kResident: {
      auto cm =
          std::make_shared<const CompressedMatrix>(read_compressed_file(path));
      oc.matrix = std::const_pointer_cast<CompressedMatrix>(cm);
      oc.source = std::make_shared<ResidentSource>(cm);
      break;
    }
    case SourceKind::kMmap: {
#if RECODE_HAVE_POSIX_IO
      oc.matrix = std::make_shared<CompressedMatrix>(std::move(layout.matrix));
      oc.source = std::make_shared<MmapSource>(path, std::move(layout.index),
                                               layout.version);
#else
      fail("rcm: mmap source unsupported on this platform");
#endif
      break;
    }
    case SourceKind::kStreamed: {
#if RECODE_HAVE_POSIX_IO
      oc.matrix = std::make_shared<CompressedMatrix>(std::move(layout.matrix));
      oc.source = std::make_shared<StreamedSource>(
          path, std::move(layout.index), layout.version, opts);
#else
      fail("rcm: streamed source unsupported on this platform");
#endif
      break;
    }
  }
  return oc;
}

}  // namespace recode::codec
