#include "codec/fast_decode.h"

#include <cstring>

#include "codec/arena.h"
#include "common/error.h"
#include "common/varint.h"

namespace recode::codec::fast {

namespace {

// Unaligned 8-byte big-endian load: the bit buffer appends stream bytes
// MSB-first, so a byte-swapped little-endian load hands us the next 8
// bytes already in shift-in order.
std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_bswap64(v);
#else
  std::uint64_t r = 0;
  for (int i = 0; i < 8; ++i) r = (r << 8) | p[i];
  return r;
#endif
}

std::uint32_t unzigzag32(std::uint32_t z) {
  return (z >> 1) ^ (~(z & 1) + 1);
}

// Snappy element tags (format_description.txt; mirrors snappy.cc).
constexpr int kTagLiteral = 0;
constexpr int kTagCopy1 = 1;
constexpr int kTagCopy2 = 2;
constexpr int kTagCopy4 = 3;

// Match copy with the destination as its own source. off >= 8: forward
// 8-byte chunks — every load trails the corresponding store by at least
// 8 bytes, so already-written output feeds later chunks and the copy
// still replicates runs correctly. off < 8: the chunks would straddle
// unwritten bytes, so fall back to the byte loop that replicates the
// short pattern. Both may write up to 7 bytes past op + len, covered by
// the destination's kArenaSlop margin.
void copy_match(std::uint8_t* dst, std::size_t op, std::size_t off,
                std::size_t len) {
  const std::uint8_t* src = dst + (op - off);
  std::uint8_t* out = dst + op;
  if (off >= 8) {
    for (std::size_t i = 0; i < len; i += 8) {
      std::uint64_t v;
      std::memcpy(&v, src + i, 8);
      std::memcpy(out + i, &v, 8);
    }
  } else {
    for (std::size_t i = 0; i < len; ++i) out[i] = src[i];
  }
}

}  // namespace

std::size_t huffman_decode(const HuffmanTable& table, ByteSpan input,
                           std::uint8_t* dst) {
  std::size_t pos = 0;
  const std::uint64_t count = varint_read(input.data(), input.size(), pos);
  // Same untrusted-count rejection as the reference decoder.
  if (count > (static_cast<std::uint64_t>(input.size()) - pos) * 8) {
    fail("huffman: declared count exceeds stream capacity");
  }
  const std::uint8_t* p = input.data() + pos;
  const std::size_t nbytes = input.size() - pos;
  const HuffmanTable::MultiEntry* multi = table.multi_table();
  const HuffmanTable::DecodeEntry* single = table.decode_table();
  constexpr std::uint32_t kWindowMask = (1u << kMaxCodeLen) - 1;

  std::uint64_t acc = 0;  // low acc_bits hold the unconsumed stream bits
  int acc_bits = 0;
  std::size_t byte_pos = 0;
  std::size_t out = 0;

  // Bulk loop: refill 8..48 bits with one unaligned 8-byte load whenever
  // the buffer drops below 56, then decode up to 4 symbols per
  // multi-table probe. Runs while a full lookup window of real bits is
  // guaranteed and a whole 4-byte emit still fits under count; the tail
  // loop below handles the rest with reference-identical semantics.
  while (out + 4 <= count) {
    if (acc_bits < 56 && byte_pos + 8 <= nbytes) {
      const int nb = (63 - acc_bits) >> 3;
      acc = (acc << (nb * 8)) | (load_be64(p + byte_pos) >> (64 - nb * 8));
      byte_pos += static_cast<std::size_t>(nb);
      acc_bits += nb * 8;
    }
    if (acc_bits < kMaxCodeLen) break;
    const std::uint32_t window =
        static_cast<std::uint32_t>(acc >> (acc_bits - kMaxCodeLen)) &
        kWindowMask;
    const HuffmanTable::MultiEntry& e = multi[window];
    std::memcpy(dst + out, e.symbols, 4);  // 4-byte emit into the slop
    out += e.count;
    acc_bits -= e.bits;
  }

  // Scalar tail: byte-wise refill and single-symbol lookups, identical
  // to HuffmanCodec::decode including its truncation errors.
  while (out < count) {
    while (acc_bits < kMaxCodeLen && byte_pos < nbytes) {
      acc = (acc << 8) | p[byte_pos++];
      acc_bits += 8;
    }
    if (acc_bits <= 0) fail("huffman: truncated stream");
    const std::uint32_t window =
        acc_bits >= kMaxCodeLen
            ? static_cast<std::uint32_t>(acc >> (acc_bits - kMaxCodeLen)) &
                  kWindowMask
            : static_cast<std::uint32_t>(acc << (kMaxCodeLen - acc_bits)) &
                  kWindowMask;
    const HuffmanTable::DecodeEntry e = single[window];
    if (e.length > acc_bits) fail("huffman: truncated stream");
    acc_bits -= e.length;
    dst[out++] = e.symbol;
  }
  return static_cast<std::size_t>(count);
}

std::size_t snappy_decode(ByteSpan input, std::uint8_t* dst) {
  std::size_t pos = 0;
  const std::uint64_t decoded =
      varint_read(input.data(), input.size(), pos);
  // Same expansion-bound rejection as the reference decoder.
  const std::size_t body = input.size() - pos;
  if (decoded > static_cast<std::uint64_t>(body) * 24 + 8) {
    fail("snappy: declared length implausible for stream size");
  }

  const std::uint8_t* p = input.data();
  const std::size_t n = input.size();
  std::size_t op = 0;

  auto need = [&](std::size_t count) {
    if (pos + count > n) fail("snappy: truncated stream");
  };
  auto room = [&](std::size_t count) {
    if (count > decoded - op) {
      fail("snappy: output exceeds declared length");
    }
  };

  while (pos < n) {
    const std::uint8_t tag = p[pos++];
    switch (tag & 3) {
      case kTagLiteral: {
        std::size_t len = (tag >> 2) + 1;
        if (len > 60) {
          const std::size_t extra = len - 60;  // 1..4 length bytes
          need(extra);
          len = 0;
          for (std::size_t i = 0; i < extra; ++i) {
            len |= static_cast<std::size_t>(p[pos + i]) << (8 * i);
          }
          len += 1;
          pos += extra;
        }
        need(len);
        room(len);
        if (len <= 16 && pos + 16 <= n) {
          // One 16-byte chunk covers the common short literal; the
          // overshoot lands in the destination slop.
          std::memcpy(dst + op, p + pos, 16);
        } else {
          std::memcpy(dst + op, p + pos, len);
        }
        op += len;
        pos += len;
        break;
      }
      case kTagCopy1: {
        need(1);
        const std::size_t len = ((tag >> 2) & 0x7) + 4;
        const std::size_t off =
            (static_cast<std::size_t>(tag >> 5) << 8) | p[pos++];
        if (off == 0 || off > op) fail("snappy: bad copy offset");
        room(len);
        copy_match(dst, op, off, len);
        op += len;
        break;
      }
      case kTagCopy2: {
        need(2);
        const std::size_t len = (tag >> 2) + 1;
        const std::size_t off = static_cast<std::size_t>(p[pos]) |
                                (static_cast<std::size_t>(p[pos + 1]) << 8);
        pos += 2;
        if (off == 0 || off > op) fail("snappy: bad copy offset");
        room(len);
        copy_match(dst, op, off, len);
        op += len;
        break;
      }
      case kTagCopy4: {
        need(4);
        const std::size_t len = (tag >> 2) + 1;
        std::size_t off = 0;
        for (int i = 0; i < 4; ++i) {
          off |= static_cast<std::size_t>(p[pos + i]) << (8 * i);
        }
        pos += 4;
        if (off == 0 || off > op) fail("snappy: bad copy offset");
        room(len);
        copy_match(dst, op, off, len);
        op += len;
        break;
      }
    }
  }
  if (op != decoded) fail("snappy: length mismatch after decode");
  return op;
}

std::size_t delta_decode(ByteSpan input, std::uint8_t* dst) {
  if (input.size() % 4 != 0) fail("delta32: input not a multiple of 4 bytes");
  const std::uint8_t* p = input.data();
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < input.size(); i += 4) {
    std::uint32_t z;
    std::memcpy(&z, p + i, 4);
    acc += unzigzag32(z);
    std::memcpy(dst + i, &acc, 4);
  }
  return input.size();
}

std::size_t varint_delta_decode(ByteSpan input, std::uint8_t* dst,
                                std::size_t dst_cap) {
  std::uint32_t acc = 0;
  std::size_t pos = 0;
  std::size_t out = 0;
  while (pos < input.size()) {
    const std::uint64_t z = varint_read(input.data(), input.size(), pos);
    if (z > 0xFFFFFFFFull) fail("varint-delta32: delta exceeds 32 bits");
    acc += unzigzag32(static_cast<std::uint32_t>(z));
    // Past dst_cap only the running total advances: the caller detects
    // the overflow as a size mismatch after the full parse, exactly
    // where the reference decode-then-check order surfaces it.
    if (out + 4 <= dst_cap) std::memcpy(dst + out, &acc, 4);
    out += 4;
  }
  return out;
}

std::size_t byte_untranspose(ByteSpan input, std::uint8_t* dst) {
  const std::size_t n = input.size() / 8;
  const std::uint8_t* p = input.data();
  // Gather each record's 8 plane bytes into one word, store with a single
  // 8-byte write. Plane j's byte sits at bit 8*j, so the little-endian
  // store lands it at record offset j.
  for (std::size_t r = 0; r < n; ++r) {
    std::uint64_t w = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      w |= static_cast<std::uint64_t>(p[j * n + r]) << (8 * j);
    }
    std::memcpy(dst + r * 8, &w, 8);
  }
  if (const std::size_t tail = input.size() - n * 8; tail != 0) {
    std::memcpy(dst + n * 8, p + n * 8, tail);
  }
  return input.size();
}

}  // namespace recode::codec::fast
