#include "codec/container_writer.h"

#include <array>
#include <cstring>
#include <fstream>
#include <vector>

#include "codec/container.h"
#include "codec/registry.h"
#include "common/error.h"
#include "common/prng.h"
#include "common/varint.h"

namespace recode::codec {

namespace {

void put_bytes(std::ostream& out, const void* data, std::size_t size) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
}

template <typename T>
void put_pod(std::ostream& out, T v) {
  put_bytes(out, &v, sizeof(v));
}

void put_varint(std::ostream& out, std::uint64_t v) {
  Bytes buf;
  varint_append(buf, v);
  put_bytes(out, buf.data(), buf.size());
}

void put_blob(std::ostream& out, const Bytes& data) {
  put_varint(out, data.size());
  put_bytes(out, data.data(), data.size());
}

std::uint64_t tell_out(std::ostream& out) {
  const std::ostream::pos_type p = out.tellp();
  if (p == std::ostream::pos_type(-1)) {
    fail("rcm: index requires a seekable stream");
  }
  return static_cast<std::uint64_t>(p);
}

Bytes to_bytes(const void* data, std::size_t size) {
  Bytes out(size);
  std::memcpy(out.data(), data, size);
  return out;
}

}  // namespace

StreamWriteResult write_compressed_stream(
    const std::string& path, sparse::index_t rows, sparse::index_t cols,
    std::span<const sparse::offset_t> row_ptr, const PipelineConfig& cfg,
    const BlockFiller& fill) {
  if (cfg.selection != CodecSelection::kSingle) {
    fail("rcm: streamed write supports single-codec selection only");
  }
  RECODE_CHECK(cfg.nnz_per_block > 0);
  RECODE_CHECK(cfg.huffman_sample_fraction > 0.0 &&
               cfg.huffman_sample_fraction <= 1.0);
  RECODE_CHECK(row_ptr.size() == static_cast<std::size_t>(rows) + 1);
  RECODE_CHECK(row_ptr.empty() || row_ptr.front() == 0);

  // Header-side view: everything write_container_header needs, plus the
  // blocking plan that defines each block's nnz range.
  CompressedMatrix cm;
  cm.rows = rows;
  cm.cols = cols;
  cm.config = cfg;
  cm.row_ptr.assign(row_ptr.begin(), row_ptr.end());
  cm.blocking = sparse::make_blocking(row_ptr, cfg.nnz_per_block);
  const std::size_t nblocks = cm.blocking.block_count();

  std::vector<sparse::index_t> idx_buf;
  std::vector<double> val_buf;
  const auto fill_block = [&](std::size_t b) {
    const auto& range = cm.blocking.blocks[b];
    idx_buf.resize(range.count);
    val_buf.resize(range.count);
    fill(b, static_cast<std::uint64_t>(range.first_nnz),
         std::span<sparse::index_t>(idx_buf),
         std::span<double>(val_buf));
  };

  // Pass 1 (only when training Huffman tables): the same block-sampling
  // Prng walk compress() performs, histogramming the post-Snappy mid
  // streams of the sampled blocks. Unsampled blocks are skipped
  // entirely — the sampler is still advanced once per block so the
  // sampled set matches compress() bit-for-bit.
  if (cfg.huffman) {
    std::array<std::uint64_t, 256> index_hist{};
    std::array<std::uint64_t, 256> value_hist{};
    Prng sampler(cfg.sample_seed);
    for (std::size_t b = 0; b < nblocks; ++b) {
      if (sampler.next_double() >= cfg.huffman_sample_fraction) continue;
      fill_block(b);
      const EncodedStages idx_st = encode_stages(
          to_bytes(idx_buf.data(), idx_buf.size() * sizeof(sparse::index_t)),
          cfg.index_transform, cfg.snappy, nullptr);
      const EncodedStages val_st = encode_stages(
          to_bytes(val_buf.data(), val_buf.size() * sizeof(double)),
          cfg.value_transform, cfg.snappy, nullptr);
      for (const std::uint8_t byte : idx_st.after_snappy) ++index_hist[byte];
      for (const std::uint8_t byte : val_st.after_snappy) ++value_hist[byte];
    }
    cm.index_table =
        std::make_shared<const HuffmanTable>(HuffmanTable::build(index_hist));
    cm.value_table =
        std::make_shared<const HuffmanTable>(HuffmanTable::build(value_hist));
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) fail("rcm: cannot open for write: " + path);
  write_container_header(out, cm);
  put_varint(out, nblocks);

  // Pass 2: regenerate, encode, and append each block record, tracking
  // its offset for the index.
  const CodecId id = codec_id_for(cfg);
  const HuffmanTable* itab = cm.index_table.get();
  const HuffmanTable* vtab = cm.value_table.get();
  StreamWriteResult result;
  result.block_count = nblocks;
  std::vector<std::uint64_t> offsets;
  offsets.reserve(nblocks + 1);
  for (std::size_t b = 0; b < nblocks; ++b) {
    fill_block(b);
    const EncodedStages idx_st = encode_stages(
        to_bytes(idx_buf.data(), idx_buf.size() * sizeof(sparse::index_t)),
        cfg.index_transform, cfg.snappy, itab);
    const EncodedStages val_st = encode_stages(
        to_bytes(val_buf.data(), val_buf.size() * sizeof(double)),
        cfg.value_transform, cfg.snappy, vtab);
    offsets.push_back(tell_out(out));
    put_pod<std::uint8_t>(out, id);
    put_blob(out, idx_st.after_huffman);
    put_blob(out, val_st.after_huffman);
    result.payload_bytes +=
        idx_st.after_huffman.size() + val_st.after_huffman.size();
    if (!out) fail("rcm: write failed: " + path);
  }

  const std::uint64_t index_offset = tell_out(out);
  offsets.push_back(index_offset);
  for (const std::uint64_t off : offsets) put_pod<std::uint64_t>(out, off);
  for (std::size_t b = 0; b < nblocks; ++b) put_pod<std::uint8_t>(out, id);
  put_pod<std::uint64_t>(out, index_offset);
  put_bytes(out, kIndexFooterMagic, sizeof(kIndexFooterMagic));
  if (!out) fail("rcm: write failed: " + path);
  result.file_bytes = tell_out(out);
  return result;
}

}  // namespace recode::codec
