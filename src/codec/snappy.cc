#include "codec/snappy.h"

#include <cstring>

#include "common/error.h"
#include "common/varint.h"

namespace recode::codec {

namespace {

constexpr int kTagLiteral = 0;
constexpr int kTagCopy1 = 1;
constexpr int kTagCopy2 = 2;
constexpr int kTagCopy4 = 3;

constexpr std::size_t kHashBits = 14;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr std::size_t kMaxOffset = 65535;  // stay within 2-byte copies

std::uint32_t load32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint32_t hash4(std::uint32_t v) {
  return (v * 0x1E35A7BDu) >> (32 - kHashBits);
}

// Emits a literal run [lit, lit+len).
void emit_literal(Bytes& out, const std::uint8_t* lit, std::size_t len) {
  while (len > 0) {
    // A single literal tag can carry up to 2^32 bytes; cap runs at 2^16 to
    // keep extra-length bytes at <=2 (blocks here are tiny anyway).
    const std::size_t run = std::min<std::size_t>(len, 65536);
    if (run < 60) {
      out.push_back(static_cast<std::uint8_t>(((run - 1) << 2) | kTagLiteral));
    } else if (run <= 256) {
      out.push_back(static_cast<std::uint8_t>((60 << 2) | kTagLiteral));
      out.push_back(static_cast<std::uint8_t>(run - 1));
    } else {
      out.push_back(static_cast<std::uint8_t>((61 << 2) | kTagLiteral));
      out.push_back(static_cast<std::uint8_t>((run - 1) & 0xFF));
      out.push_back(static_cast<std::uint8_t>(((run - 1) >> 8) & 0xFF));
    }
    out.insert(out.end(), lit, lit + run);
    lit += run;
    len -= run;
  }
}

// Emits one copy element of length 4..64 (callers split longer matches).
void emit_copy_chunk(Bytes& out, std::size_t offset, std::size_t len) {
  if (len >= 4 && len <= 11 && offset < 2048) {
    out.push_back(static_cast<std::uint8_t>(((offset >> 8) << 5) |
                                            ((len - 4) << 2) | kTagCopy1));
    out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
  } else {
    out.push_back(static_cast<std::uint8_t>(((len - 1) << 2) | kTagCopy2));
    out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
    out.push_back(static_cast<std::uint8_t>((offset >> 8) & 0xFF));
  }
}

void emit_copy(Bytes& out, std::size_t offset, std::size_t len) {
  // Long matches are split; keep >=4-byte chunks so 1-byte-offset form
  // stays legal for the remainder.
  while (len >= 68) {
    emit_copy_chunk(out, offset, 64);
    len -= 64;
  }
  if (len > 64) {
    emit_copy_chunk(out, offset, 60);
    len -= 60;
  }
  emit_copy_chunk(out, offset, len);
}

}  // namespace

Bytes SnappyCodec::encode(ByteSpan input) const {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  varint_append(out, input.size());
  if (input.empty()) return out;

  const std::uint8_t* base = input.data();
  const std::size_t n = input.size();
  std::vector<std::int64_t> table(kHashSize, -1);

  std::size_t pos = 0;
  std::size_t literal_start = 0;
  // Leave a 4-byte tail so load32 never overruns.
  while (pos + 4 <= n) {
    const std::uint32_t cur = load32(base + pos);
    const std::uint32_t h = hash4(cur);
    const std::int64_t cand = table[h];
    table[h] = static_cast<std::int64_t>(pos);
    if (cand >= 0 && pos - static_cast<std::size_t>(cand) <= kMaxOffset &&
        load32(base + cand) == cur) {
      // Extend the match forward.
      std::size_t match_len = 4;
      const std::size_t off = pos - static_cast<std::size_t>(cand);
      while (pos + match_len < n &&
             base[cand + match_len] == base[pos + match_len]) {
        ++match_len;
      }
      if (literal_start < pos) {
        emit_literal(out, base + literal_start, pos - literal_start);
      }
      emit_copy(out, off, match_len);
      // Re-seed the hash table sparsely inside the match (cheap, standard).
      const std::size_t end = pos + match_len;
      for (std::size_t p = pos + 1; p + 4 <= end && p + 4 <= n; p += 13) {
        table[hash4(load32(base + p))] = static_cast<std::int64_t>(p);
      }
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  if (literal_start < n) {
    emit_literal(out, base + literal_start, n - literal_start);
  }
  return out;
}

std::size_t SnappyCodec::decoded_length(ByteSpan input) {
  std::size_t pos = 0;
  return static_cast<std::size_t>(
      varint_read(input.data(), input.size(), pos));
}

Bytes SnappyCodec::decode(ByteSpan input) const {
  std::size_t pos = 0;
  const std::uint64_t decoded =
      varint_read(input.data(), input.size(), pos);
  // The length preamble is untrusted: cap it against the format's maximum
  // expansion before reserving. A copy element emits at most 64 bytes from
  // 3 stream bytes (~22x); anything above that bound cannot be produced by
  // the remaining stream, so a huge declared length is corruption, not a
  // reason to attempt a multi-GB allocation.
  const std::size_t body = input.size() - pos;
  if (decoded > static_cast<std::uint64_t>(body) * 24 + 8) {
    fail("snappy: declared length implausible for stream size");
  }
  Bytes out;
  out.reserve(decoded);

  const std::uint8_t* p = input.data();
  const std::size_t n = input.size();

  auto need = [&](std::size_t count) {
    if (pos + count > n) fail("snappy: truncated stream");
  };
  // Rejects elements that would push the output past the declared length,
  // so corrupt streams cannot grow the buffer beyond the capped reserve.
  auto room = [&](std::size_t count) {
    if (count > decoded - out.size()) {
      fail("snappy: output exceeds declared length");
    }
  };

  while (pos < n) {
    const std::uint8_t tag = p[pos++];
    switch (tag & 3) {
      case kTagLiteral: {
        std::size_t len = (tag >> 2) + 1;
        if (len > 60) {
          const std::size_t extra = len - 60;  // 1..4 length bytes
          need(extra);
          len = 0;
          for (std::size_t i = 0; i < extra; ++i) {
            len |= static_cast<std::size_t>(p[pos + i]) << (8 * i);
          }
          len += 1;
          pos += extra;
        }
        need(len);
        room(len);
        out.insert(out.end(), p + pos, p + pos + len);
        pos += len;
        break;
      }
      case kTagCopy1: {
        need(1);
        const std::size_t len = ((tag >> 2) & 0x7) + 4;
        const std::size_t off =
            (static_cast<std::size_t>(tag >> 5) << 8) | p[pos++];
        if (off == 0 || off > out.size()) fail("snappy: bad copy offset");
        room(len);
        // Byte-by-byte copy: overlapping copies (off < len) are legal and
        // replicate the run, matching the format semantics.
        for (std::size_t i = 0; i < len; ++i) {
          out.push_back(out[out.size() - off]);
        }
        break;
      }
      case kTagCopy2: {
        need(2);
        const std::size_t len = (tag >> 2) + 1;
        const std::size_t off = static_cast<std::size_t>(p[pos]) |
                                (static_cast<std::size_t>(p[pos + 1]) << 8);
        pos += 2;
        if (off == 0 || off > out.size()) fail("snappy: bad copy offset");
        room(len);
        for (std::size_t i = 0; i < len; ++i) {
          out.push_back(out[out.size() - off]);
        }
        break;
      }
      case kTagCopy4: {
        need(4);
        const std::size_t len = (tag >> 2) + 1;
        std::size_t off = 0;
        for (int i = 0; i < 4; ++i) {
          off |= static_cast<std::size_t>(p[pos + i]) << (8 * i);
        }
        pos += 4;
        if (off == 0 || off > out.size()) fail("snappy: bad copy offset");
        room(len);
        for (std::size_t i = 0; i < len; ++i) {
          out.push_back(out[out.size() - off]);
        }
        break;
      }
    }
  }
  if (out.size() != decoded) fail("snappy: length mismatch after decode");
  return out;
}

}  // namespace recode::codec
