// Out-of-core access to compressed containers: the paper's thesis —
// compressed blocks are the right unit of data movement — applied to
// storage bandwidth. A ContainerSource hands the decode engines the
// compressed streams of any block on demand, from one of three
// backends:
//
//   ResidentSource   the historical fully-in-RAM path (cm.blocks),
//   MmapSource       a read-only mmap of the .rcm file; prefetch is
//                    madvise(WILLNEED) touch-ahead, acquire touches the
//                    pages so the fault cost lands on the prefetcher,
//   StreamedSource   pread into a pool of recycled read windows with a
//                    bounded budget of in-flight compressed bytes; a
//                    background IO thread services prefetches so reads
//                    overlap decode the way decode overlaps the kernel.
//
// The lease protocol engines follow, per contiguous block range
// (a band, a split task, or a serial chunk):
//
//   prefetch(first, n)   hint, never blocks; drops when the window
//                        budget or queue is full (acquire then reads
//                        synchronously — correctness never depends on a
//                        prefetch happening)
//   acquire(first, n)    blocks until the range's bytes are addressable
//   block(b)             compressed index/value spans, valid while the
//                        covering lease is held
//   release(first, n)    ends the lease, recycles windows; also discards
//                        a prefetched-but-unneeded range (cache hits)
//   end_run()            run boundary: reclaims everything not in use
//
// Out-of-core backends record the leading `storage -> container` ledger
// hop at block() time (bytes_in = the on-disk extent including record
// framing, bytes_out = payload + codec-id dispatch byte, which is
// exactly the container hop's input — conservation-checked), and read
// nanoseconds at IO time. Resident sources record no storage flow.
//
// Both out-of-core backends open via the block-offset index
// (codec/container.h): footer when present, else a one-pass scan.
// Hostile inputs — extents past EOF, overlapping or reordered offsets,
// truncated records — surface as recode::Error at open or at block(),
// never as over-allocation beyond the window budget.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "codec/container.h"
#include "codec/pipeline.h"

namespace recode::codec {

enum class SourceKind { kResident, kMmap, kStreamed };

const char* source_kind_name(SourceKind kind);

// Compressed streams of one block, aliasing backend-owned memory
// (cm.blocks, the mmap view, or a pooled read window). Valid until the
// covering lease is released.
struct SourceBlockBytes {
  ByteSpan index_data;
  ByteSpan value_data;
};

// Monotonic per-source counters (snapshot with stats()).
struct SourceStats {
  std::uint64_t bytes_read = 0;      // on-disk extent bytes fetched/touched
  std::uint64_t read_ns = 0;         // time inside pread / page touches
  std::uint64_t blocks_served = 0;   // block() calls
  std::uint64_t prefetch_hits = 0;   // acquires satisfied by a prefetch
  std::uint64_t prefetch_drops = 0;  // prefetch hints dropped (budget/queue)
  std::uint64_t sync_reads = 0;      // acquires that had to read inline
  std::uint64_t peak_window_bytes = 0;  // streamed: max in-flight bytes
};

class ContainerSource {
 public:
  virtual ~ContainerSource() = default;

  virtual SourceKind kind() const = 0;
  bool out_of_core() const { return kind() != SourceKind::kResident; }

  virtual void prefetch(std::size_t first, std::size_t count) {
    (void)first;
    (void)count;
  }
  virtual void acquire(std::size_t first, std::size_t count) {
    (void)first;
    (void)count;
  }
  virtual SourceBlockBytes block(std::size_t b) = 0;
  virtual void release(std::size_t first, std::size_t count) {
    (void)first;
    (void)count;
  }
  virtual void end_run() {}

  // On-disk extent bytes of a contiguous block range, record framing
  // included; 0 when the backend doesn't track extents (resident).
  virtual std::size_t range_extent_bytes(std::size_t first,
                                         std::size_t count) const {
    (void)first;
    (void)count;
    return 0;
  }

  // Capacity hint from the engine driving the lease protocol: at most
  // `leases` ranges held or staged concurrently, none larger than
  // `max_lease_bytes` of extent. StreamedSource pre-provisions its
  // window pool so a warmed steady state never allocates — without the
  // hint, pool growth is demand-driven and a rare concurrency spike can
  // allocate long after the pool looks warm. No-op elsewhere.
  virtual void reserve(std::size_t leases, std::size_t max_lease_bytes) {
    (void)leases;
    (void)max_lease_bytes;
  }
  virtual SourceStats stats() const { return {}; }
};

struct StreamedOptions {
  // Bound on in-flight compressed bytes across queued, reading, ready,
  // and in-use windows. A single range larger than the budget is still
  // served (one oversized window at a time) so tiny budgets degrade to
  // serial reads instead of deadlocking.
  std::size_t window_budget_bytes = 64ull << 20;
};

// Wraps an already-resident matrix; block() aliases cm.blocks. The
// matrix must outlive the source.
std::shared_ptr<ContainerSource> make_resident_source(
    const CompressedMatrix& cm);

// An opened container plus the source that serves its blocks. For
// out-of-core kinds the matrix is header-only (blocks empty; blocking,
// codec ids, and tables populated) — O(header + index) resident bytes.
struct OpenedContainer {
  std::shared_ptr<CompressedMatrix> matrix;
  std::shared_ptr<ContainerSource> source;
  BlockIndex index;
  std::uint32_t version = kContainerVersion;
  std::uint64_t file_size = 0;
  SourceKind kind = SourceKind::kResident;
};

// Opens `path` with the requested backend. Resident reads the whole
// container into RAM (read_compressed_file); mmap/streamed read only
// the header and block-offset index. Throws recode::Error (with the
// path in the message) on any corruption.
OpenedContainer open_container(const std::string& path, SourceKind kind,
                               const StreamedOptions& opts = {});

}  // namespace recode::codec
