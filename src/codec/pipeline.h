// The paper's matrix compression pipeline: blocked CSR streams compressed
// with Delta -> Snappy -> Huffman (§III-D, §IV-B).
//
// The col_idx and val arrays are split into blocks covering a common nnz
// range (sparse::Blocking). Index blocks are optionally delta-transformed,
// then both streams pass through Snappy and finally Huffman with one
// per-matrix table per stream, trained on a sampled fraction of the
// Snappy-compressed blocks (the paper samples up to 40% of blocks).
//
// row_ptr stays uncompressed: it is O(rows) not O(nnz) and the paper's
// 12 B/nnz baseline convention excludes it on both sides of the metric.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "codec/huffman.h"
#include "sparse/blocked.h"
#include "sparse/formats.h"

namespace recode::codec {

// Per-stream pre-transform applied before Snappy/Huffman.
enum class Transform : std::uint8_t {
  kNone,
  kDelta32,        // fixed-width zigzag first differences (the paper's Delta)
  kVarintDelta,    // LEB128 zigzag deltas (§VII custom-encoding direction)
  kByteTranspose,  // plane-major regrouping of 8-byte records (value streams)
};

const char* transform_name(Transform t);

// Stable one-byte block codec identifier (packed field code, see
// codec/registry.h). Recorded per block in container v2 and dispatched
// on by every decode engine.
using CodecId = std::uint8_t;

// How the encoder picks each block's codec.
enum class CodecSelection : std::uint8_t {
  kSingle,      // every block uses the config's pipeline (the v1 behavior)
  kHeuristic,   // per-block pick from sparse/stats.h block statistics
  kExhaustive,  // per-block trial-encode of candidate_codecs(), min bytes
};

const char* codec_selection_name(CodecSelection s);

struct PipelineConfig {
  Transform index_transform = Transform::kDelta32;  // on the col_idx stream
  Transform value_transform = Transform::kNone;     // (ablation only)
  bool snappy = true;
  bool huffman = true;
  // Per-block adaptive codec selection (codec/registry.h). kSingle keeps
  // the paper's one-pipeline-per-matrix behavior bit-for-bit.
  CodecSelection selection = CodecSelection::kSingle;
  std::size_t nnz_per_block = sparse::kDefaultNnzPerBlock;  // 1024 => 8 KB value blocks
  double huffman_sample_fraction = 0.4;  // fraction of blocks used to train
  std::uint64_t sample_seed = 1;

  // Paper configurations.
  static PipelineConfig udp_dsh();      // Delta-Snappy-Huffman, 8 KB blocks
  static PipelineConfig udp_ds();       // Delta-Snappy, 8 KB blocks
  static PipelineConfig cpu_snappy();   // Snappy only, 32 KB blocks (CPU baseline)
  // §VII custom encoding: varint-delta indices + Snappy + Huffman.
  static PipelineConfig udp_vsh();
  // Per-block adaptive trial-encode on top of the DSH stages — the
  // configuration that moves the fig10/fig11 frontier.
  static PipelineConfig udp_adaptive();
};

struct CompressedBlock {
  Bytes index_data;
  Bytes value_data;

  std::size_t bytes() const { return index_data.size() + value_data.size(); }
};

// Per-stage byte totals across all blocks (for the codec-stage ablation).
struct StageSizes {
  std::size_t raw = 0;
  std::size_t after_snappy = 0;   // == raw when snappy disabled
  std::size_t after_huffman = 0;  // == after_snappy when huffman disabled
};

// Encoder selection accounting: what the adaptive pass saved over the
// single-pipeline baseline (same stages, same tables) on this matrix.
struct SelectionStats {
  std::size_t baseline_bytes = 0;  // sum of per-block baseline-codec bytes
  std::size_t adaptive_bytes = 0;  // sum of per-block winning-codec bytes
  std::size_t switched_blocks = 0; // blocks whose winner != baseline codec
};

// A fully compressed matrix plus everything needed to decompress it.
struct CompressedMatrix {
  sparse::index_t rows = 0;
  sparse::index_t cols = 0;
  std::vector<sparse::offset_t> row_ptr;  // kept raw
  sparse::Blocking blocking;
  PipelineConfig config;
  std::shared_ptr<const HuffmanTable> index_table;  // null if !huffman
  std::shared_ptr<const HuffmanTable> value_table;
  std::vector<CompressedBlock> blocks;
  // One CodecId per block (codec/registry.h). Empty means uniform: every
  // block uses the config's pipeline (hand-built matrices, pre-registry
  // callers); compress() and read_compressed() always populate it.
  std::vector<CodecId> block_codecs;
  StageSizes index_stages;
  StageSizes value_stages;
  SelectionStats selection_stats;

  std::size_t nnz() const {
    return row_ptr.empty() ? 0 : static_cast<std::size_t>(row_ptr.back());
  }

  // Block b's codec id: the recorded per-block id, or the uniform id the
  // config implies when block_codecs is empty.
  CodecId block_codec_id(std::size_t b) const;

  // Bytes streamed from memory per SpMV pass: compressed blocks, their
  // per-block codec-id bytes, plus the (tiny) Huffman tables. Excludes
  // row_ptr, matching the 12 B/nnz baseline convention.
  std::size_t stream_bytes() const;

  // The paper's headline metric.
  double bytes_per_nnz() const {
    return nnz() == 0 ? 0.0
                      : static_cast<double>(stream_bytes()) /
                            static_cast<double>(nnz());
  }
};

// Compresses a CSR matrix with the given pipeline.
CompressedMatrix compress(const sparse::Csr& csr, const PipelineConfig& cfg);

// Decompresses block b into caller-provided buffers (resized to the block's
// nnz count). Routed through the fast decode path (fast_decode.h) over a
// thread-local DecodeArena, so steady-state calls reuse capacity instead
// of allocating per stage.
void decompress_block(const CompressedMatrix& cm, std::size_t b,
                      std::vector<sparse::index_t>& indices,
                      std::vector<double>& values);

// The pre-fast-path implementation: per-stage Bytes allocations and the
// scalar reference decoders. Kept as the behavioral reference the
// fast-decode differential suite and benches compare against.
void decompress_block_reference(const CompressedMatrix& cm, std::size_t b,
                                std::vector<sparse::index_t>& indices,
                                std::vector<double>& values);

class DecodeArena;  // arena.h

// A block decoded into arena-owned memory. The spans alias the `out`
// arena's index/value slabs and stay valid until the next decode into the
// same arena (the in-flight-slab contract StreamingExecutor relies on).
struct DecodedBlock {
  std::span<const sparse::index_t> indices;
  std::span<const double> values;
};

// Allocation-free block decode: stage intermediates ping-pong between the
// scratch arena's two slabs, the final stage of each stream lands
// directly in the out arena's index/value slab. Once both arenas have
// warmed to the matrix's largest block, decoding performs zero heap
// allocations. Bitwise-identical to decompress_block_reference, including
// thrown recode::Errors on malformed streams.
DecodedBlock decompress_block_fast(const CompressedMatrix& cm, std::size_t b,
                                   DecodeArena& scratch, DecodeArena& out);

// Same decode, but with the block's compressed streams supplied by the
// caller instead of read from cm.blocks — the out-of-core path, where
// payload bytes live in an mmap'd view or a pooled read window and
// cm carries only the header-side metadata (blocking plan, codec ids,
// tables; cm.blocks may be empty). Bitwise-identical to the resident
// overload for the same bytes.
DecodedBlock decompress_block_fast(const CompressedMatrix& cm, std::size_t b,
                                   ByteSpan index_data, ByteSpan value_data,
                                   DecodeArena& scratch, DecodeArena& out);

// Full round-trip back to CSR (tests / CPU-side decompression baseline).
sparse::Csr decompress(const CompressedMatrix& cm);

// Stage-by-stage forward transform of one raw byte block, exposed so the
// UDP programs and ablations can tap intermediate representations.
struct EncodedStages {
  Bytes after_transform;  // == input when transform is kNone
  Bytes after_snappy;     // == after_transform when snappy disabled
  Bytes after_huffman;    // == after_snappy when huffman disabled
};
EncodedStages encode_stages(ByteSpan raw, Transform transform, bool snappy,
                            const HuffmanTable* huffman);

// Applies / inverts one Transform on a raw byte buffer.
Bytes apply_transform(Transform t, ByteSpan raw);
Bytes invert_transform(Transform t, ByteSpan encoded);

}  // namespace recode::codec
