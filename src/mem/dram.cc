#include "mem/dram.h"

#include <algorithm>

#include "common/error.h"

namespace recode::mem {

DramConfig DramConfig::ddr4_100gbs() {
  return {"ddr4-100GB/s", 100e9, 100.0};
}

DramConfig DramConfig::hbm2_1tbs() {
  return {"hbm2-1TB/s", 1000e9, 8.0};
}

DramModel::DramModel(DramConfig config) : config_(std::move(config)) {
  RECODE_CHECK(config_.peak_bandwidth_bps > 0);
  RECODE_CHECK(config_.energy_pj_per_bit >= 0);
}

double DramModel::transfer_seconds(std::uint64_t bytes,
                                   double fraction) const {
  RECODE_CHECK(fraction > 0.0 && fraction <= 1.0);
  return static_cast<double>(bytes) /
         (config_.peak_bandwidth_bps * fraction);
}

double DramModel::power_at_bandwidth(double bandwidth_bps) const {
  const double bw = std::min(bandwidth_bps, config_.peak_bandwidth_bps);
  // bytes/s * 8 bits/byte * pJ/bit = pW; 1e-12 to watts.
  return bw * 8.0 * config_.energy_pj_per_bit * 1e-12;
}

double DramModel::max_power_watts() const {
  return power_at_bandwidth(config_.peak_bandwidth_bps);
}

double DramModel::energy_joules(std::uint64_t bytes) const {
  return static_cast<double>(bytes) * 8.0 * config_.energy_pj_per_bit * 1e-12;
}

}  // namespace recode::mem
