// DRAM bandwidth/energy models (paper §IV-A).
//
// Two reference memory systems:
//   * DDR4: single-die AMD Epyc class, 100 GB/s peak, 100 pJ/bit for a
//     DRAM read shipped to the CPU.
//   * HBM2: four stacks, 1 TB/s peak, 8 pJ/bit.
// Power at a given sustained bandwidth is linear in the data rate; the
// "maximum memory power" of the paper's Figs 16/17 is peak bandwidth
// times energy per bit (80 W for DDR4, 64 W for HBM2).
#pragma once

#include <cstdint>
#include <string>

namespace recode::mem {

struct DramConfig {
  std::string name;
  double peak_bandwidth_bps = 0.0;  // bytes per second
  double energy_pj_per_bit = 0.0;

  static DramConfig ddr4_100gbs();
  static DramConfig hbm2_1tbs();
};

class DramModel {
 public:
  explicit DramModel(DramConfig config);

  const DramConfig& config() const { return config_; }

  // Time to stream `bytes` sequentially at `fraction` of peak bandwidth.
  double transfer_seconds(std::uint64_t bytes, double fraction = 1.0) const;

  // Power when the interface sustains `bandwidth_bps` (clamped to peak).
  double power_at_bandwidth(double bandwidth_bps) const;

  // Peak-rate power: the paper's "maximum memory power".
  double max_power_watts() const;

  // Energy to move `bytes` (rate-independent: pJ/bit model).
  double energy_joules(std::uint64_t bytes) const;

 private:
  DramConfig config_;
};

}  // namespace recode::mem
