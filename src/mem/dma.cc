#include "mem/dma.h"

#include "common/error.h"

namespace recode::mem {

DmaEngine::DmaEngine(const DramModel& dram, DmaConfig config)
    : dram_(&dram), config_(config) {
  RECODE_CHECK(config_.max_descriptor_bytes > 0);
  RECODE_CHECK(config_.descriptor_overhead_s >= 0);
}

double DmaEngine::transfer(std::uint64_t bytes) {
  const std::uint64_t descriptors =
      bytes == 0 ? 0
                 : (bytes + config_.max_descriptor_bytes - 1) /
                       config_.max_descriptor_bytes;
  const double latency =
      static_cast<double>(descriptors) * config_.descriptor_overhead_s +
      dram_->transfer_seconds(bytes == 0 ? 0 : bytes);
  total_bytes_ += bytes;
  total_descriptors_ += descriptors;
  total_seconds_ += latency;
  return latency;
}

double DmaEngine::total_energy_joules() const {
  return dram_->energy_joules(total_bytes_);
}

void DmaEngine::reset() {
  total_bytes_ = 0;
  total_descriptors_ = 0;
  total_seconds_ = 0.0;
}

}  // namespace recode::mem
