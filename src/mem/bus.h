// Shared memory-bus contention model.
//
// Figure 4 of the paper integrates the UDP into the chip NoC next to the
// LLC: the DMA engine's block transfers and the CPU's demand misses share
// the memory controller. This M/D/1-style model answers the system
// question the figure raises — how much does recoding traffic interfere
// with the cores? Under compression the *total* traffic shrinks, so
// contention drops even though a new agent was added.
#pragma once

#include <cstdint>

#include "mem/dram.h"

namespace recode::mem {

struct BusConfig {
  // Fraction of peak DRAM bandwidth usable before queueing dominates
  // (row-buffer and scheduling losses).
  double efficiency = 0.9;
  // Fixed service latency per 64 B line at zero load.
  double unloaded_latency_s = 60e-9;
};

class SharedBus {
 public:
  SharedBus(const DramModel& dram, BusConfig config = {});

  // Registers a traffic source demanding `bandwidth_bps` sustained.
  void add_stream(double bandwidth_bps);

  void reset();

  // Total demanded bandwidth across sources.
  double demand_bps() const { return demand_bps_; }

  // Usable peak (efficiency-derated).
  double capacity_bps() const;

  // Utilization rho = demand / capacity (may exceed 1: oversubscribed).
  double utilization() const;

  // Whether all streams fit (rho <= 1).
  bool feasible() const { return utilization() <= 1.0; }

  // Bandwidth each source actually receives: demand when feasible, a
  // proportional share of capacity when oversubscribed.
  double granted_bps(double requested_bps) const;

  // Mean access latency under M/D/1 queueing: L = s * (1 + rho/(2(1-rho))).
  // Unbounded as rho -> 1; callers should check feasible() first.
  double mean_latency_s() const;

  // Memory power at the granted (not demanded) traffic level.
  double power_watts() const;

 private:
  const DramModel* dram_;
  BusConfig config_;
  double demand_bps_ = 0.0;
};

}  // namespace recode::mem
