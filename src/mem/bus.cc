#include "mem/bus.h"

#include <algorithm>

#include "common/error.h"

namespace recode::mem {

SharedBus::SharedBus(const DramModel& dram, BusConfig config)
    : dram_(&dram), config_(config) {
  RECODE_CHECK(config_.efficiency > 0 && config_.efficiency <= 1.0);
  RECODE_CHECK(config_.unloaded_latency_s >= 0);
}

void SharedBus::add_stream(double bandwidth_bps) {
  RECODE_CHECK(bandwidth_bps >= 0);
  demand_bps_ += bandwidth_bps;
}

void SharedBus::reset() { demand_bps_ = 0.0; }

double SharedBus::capacity_bps() const {
  return dram_->config().peak_bandwidth_bps * config_.efficiency;
}

double SharedBus::utilization() const {
  return demand_bps_ / capacity_bps();
}

double SharedBus::granted_bps(double requested_bps) const {
  RECODE_CHECK(requested_bps >= 0);
  if (demand_bps_ <= 0 || feasible()) return requested_bps;
  return requested_bps * capacity_bps() / demand_bps_;
}

double SharedBus::mean_latency_s() const {
  const double rho = std::min(utilization(), 0.999999);
  return config_.unloaded_latency_s * (1.0 + rho / (2.0 * (1.0 - rho)));
}

double SharedBus::power_watts() const {
  return dram_->power_at_bandwidth(std::min(demand_bps_, capacity_bps()));
}

}  // namespace recode::mem
