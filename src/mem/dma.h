// DMA engine model (paper §III-C, citing the DLT accelerator of DATE'16).
//
// The UDP's local memory is mapped uncacheable into the CPU address space;
// a lightweight DMA engine acting as an L2 agent moves blocks between the
// memory controller and UDP scratchpads. The model charges a fixed
// per-descriptor setup latency plus the streaming time at the DRAM rate,
// and accounts total traffic so system-level analyses can convert it to
// time and energy.
#pragma once

#include <cstdint>

#include "mem/dram.h"

namespace recode::mem {

struct DmaConfig {
  double descriptor_overhead_s = 200e-9;  // setup cost per block transfer
  std::size_t max_descriptor_bytes = 64 * 1024;
};

class DmaEngine {
 public:
  DmaEngine(const DramModel& dram, DmaConfig config = {});

  // Models transferring `bytes` as one logical request (split into
  // descriptors as needed); returns the transfer latency and accumulates
  // traffic counters.
  double transfer(std::uint64_t bytes);

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t total_descriptors() const { return total_descriptors_; }
  double total_seconds() const { return total_seconds_; }

  // Energy of all traffic so far under the DRAM energy model.
  double total_energy_joules() const;

  void reset();

 private:
  const DramModel* dram_;
  DmaConfig config_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_descriptors_ = 0;
  double total_seconds_ = 0.0;
};

}  // namespace recode::mem
